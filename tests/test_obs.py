"""Observability layer: tracing, metrics registry, exporters, flight recorder.

Two properties anchor this suite:

* **Zero interference** — tracing must never alter query output: traced
  runs are byte-identical to untraced ones on every backend, and the
  disabled tracer produces no records at all.
* **Well-formed evidence** — enabled tracing yields structurally sound span
  trees per tick (session.tick → tick.ingest / tick.emit → executor
  dispatch → kernel partitions), the registry exports parse as Prometheus
  text / JSON, and the flight recorder pins slow ticks with their kernel
  context.
"""

import json
import logging
import threading

import pytest

from repro.apps import get_application
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.stream import Event
from repro.datagen.sources import sources_for_streams
from repro.metrics.streaming import LatencyDistribution, SessionMetrics
from repro.obs import (
    NULL_TRACER,
    FlightRecorder,
    MetricsRegistry,
    SpanRecord,
    Tracer,
    build_span_trees,
    chrome_trace_json,
    make_tracer,
    to_chrome_trace,
)
from repro.serve.service import QueryService

APP_EVENTS = 600


def run_traced_session(engine, app_name="trading", events=APP_EVENTS, per_poll=200):
    app = get_application(app_name)
    streams = app.streams(events, seed=7)
    session = engine.open_session(
        app.program(), sources_for_streams(streams, events_per_poll=per_poll)
    )
    session.run_to_exhaustion()
    return session


# ---------------------------------------------------------------------- #
# tracer core
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_nesting_produces_parent_linkage(self):
        tracer = Tracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        records = tracer.drain()
        by_name = {r.name: r for r in records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["outer"].attrs == {"k": 1}

    def test_set_attaches_attrs_mid_span(self):
        tracer = Tracer()
        with tracer.span("work") as sp:
            sp.set(partitions=4)
        (record,) = tracer.drain()
        assert record.attrs["partitions"] == 4

    def test_drain_is_destructive_and_start_ordered(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        records = tracer.drain()
        assert [r.name for r in records] == [f"s{i}" for i in range(5)]
        assert records == sorted(records, key=lambda r: r.start)
        assert tracer.drain() == []

    def test_snapshot_is_non_destructive(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.snapshot()) == 1
        assert len(tracer.snapshot()) == 1
        assert len(tracer.drain()) == 1

    def test_exception_unwinding_pops_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current_span_id() is None
        names = {r.name for r in tracer.drain()}
        assert names == {"outer", "inner"}

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("dispatch") as sp:
            parent = tracer.current_span_id()
        with tracer.span("worker", parent=parent):
            pass
        by_name = {r.name: r for r in tracer.drain()}
        assert by_name["worker"].parent_id == by_name["dispatch"].span_id

    def test_cross_thread_records_collected(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)  # idents are unique only while alive

        def work():
            with tracer.span("threaded"):
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = tracer.drain()
        assert len(records) == 4
        assert len({r.thread_id for r in records}) == 4

    def test_buffer_is_bounded(self):
        tracer = Tracer(max_spans_per_thread=8)
        for _ in range(50):
            with tracer.span("s"):
                pass
        assert len(tracer.drain()) == 8

    def test_adopt_reparents_shipped_roots(self):
        tracer = Tracer()
        shipped = [
            SpanRecord("kernel.partition", "fff-w1", None, 1.0, 0.1, 0.1, {}, 1, 999),
            SpanRecord("kernel.sub", "fff-w2", "fff-w1", 1.01, 0.05, 0.05, {}, 1, 999),
        ]
        with tracer.span("executor.dispatch"):
            tracer.adopt(shipped)
        trees = build_span_trees(tracer.drain())
        (root,) = trees
        assert root.name == "executor.dispatch"
        assert root.find("kernel.partition")
        # the shipped child keeps its worker-side parent
        assert root.find("kernel.sub")[0].record.parent_id == "fff-w1"

    def test_make_tracer_resolution(self, monkeypatch):
        assert make_tracer(False) is NULL_TRACER
        assert make_tracer(True).enabled
        existing = Tracer()
        assert make_tracer(existing) is existing
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert make_tracer(None) is NULL_TRACER
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert make_tracer(None).enabled
        with pytest.raises(TypeError):
            make_tracer(42)

    def test_null_tracer_records_nothing(self):
        sp = NULL_TRACER.span("anything", k=1)
        with sp as inner:
            inner.set(more=2)
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.snapshot() == []
        # one shared span instance: the disabled path allocates nothing
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# ---------------------------------------------------------------------- #
# metrics registry + exporters
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things", backend="thread")
        c.inc()
        c.inc(2)
        g = reg.gauge("repro_depth", "queue depth")
        g.set(5)
        g.dec(2)
        h = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert c.value == 3
        assert g.value == 3
        assert h.count == 3 and h.sum == pytest.approx(5.55)
        # cumulative buckets, +inf last
        assert h.bucket_counts() == [(0.1, 1), (1.0, 2), (float("inf"), 3)]

    def test_same_identity_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", backend="a")
        b = reg.counter("repro_x_total", backend="a")
        other = reg.counter("repro_x_total", backend="b")
        assert a is b and a is not other

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_dual_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_dual_total")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("repro_n_total").inc(-1)

    def test_prometheus_text_parses(self):
        reg = MetricsRegistry()
        reg.counter("repro_evil_total", 'he said "hi"\nthere', label='va"l').inc()
        reg.histogram("repro_h_seconds", "h", buckets=(0.5,)).observe(0.1)
        text = reg.to_prometheus()
        assert text.endswith("\n")
        seen_types = {}
        for line in text.splitlines():
            assert line, "no blank lines in exposition"
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(" ")
                seen_types[name] = kind
                continue
            if line.startswith("#"):
                continue
            # every sample line is "<name and labels> <value>"
            body, value = line.rsplit(" ", 1)
            float(value)
        assert seen_types == {
            "repro_evil_total": "counter",
            "repro_h_seconds": "histogram",
        }
        assert 'le="0.5"' in text and 'le="+Inf"' in text
        assert "repro_h_seconds_sum" in text and "repro_h_seconds_count" in text

    def test_json_export_is_serializable(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total").inc(7)
        reg.histogram("repro_b_seconds").observe(0.2)
        doc = json.loads(reg.to_json_str())
        assert doc["repro_a_total"]["series"][0]["value"] == 7
        assert doc["repro_b_seconds"]["series"][0]["count"] == 1


class TestChromeTrace:
    def test_events_load_and_are_time_ordered(self):
        tracer = Tracer()
        with tracer.span("outer", tenant="t"):
            with tracer.span("inner"):
                pass
        doc = json.loads(chrome_trace_json(tracer.drain()))
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        outer = events[0]
        assert outer["ph"] == "X"
        assert outer["cat"] == "outer"
        assert outer["args"]["tenant"] == "t"
        assert "cpu_time_ms" in outer["args"]
        assert events[1]["args"]["parent_id"] == outer["args"]["span_id"]


# ---------------------------------------------------------------------- #
# engine/session instrumentation
# ---------------------------------------------------------------------- #
class TestInstrumentation:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_span_trees_per_tick_across_backends(self, kind):
        with TiltEngine(workers=2, executor_kind=kind, trace=True) as engine:
            run_traced_session(engine)
            records = engine.tracer.drain()
            trees = build_span_trees(records)
            tick_trees = [t for t in trees if t.name == "session.tick"]
            assert tick_trees, "no tick spans recorded"
            emitting = [t for t in tick_trees if t.find("tick.emit")]
            assert emitting, "no tick emitted output"
            # every regular tick ingests; the closing flush may not
            regular = [t for t in tick_trees if "closing" not in t.record.attrs]
            assert regular and all(t.find("tick.ingest") for t in regular)
            for tree in emitting:
                dispatches = tree.find("executor.dispatch")
                assert dispatches
                assert dispatches[0].record.attrs["backend"] == kind
                kernels = tree.find("kernel.partition")
                assert kernels
                for k in kernels:
                    assert "kernel_digest" in k.record.attrs
                    if kind == "process":
                        # worker-side spans carry the worker's pid
                        assert k.record.pid != tree.record.pid

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_traced_output_byte_identical(self, kind):
        app = get_application("trading")
        streams = app.streams(APP_EVENTS, seed=3)
        outputs = []
        for trace in (False, True):
            with TiltEngine(workers=2, executor_kind=kind, trace=trace) as engine:
                session = engine.open_session(
                    app.program(), sources_for_streams(streams, events_per_poll=200)
                )
                session.run_to_exhaustion()
                outputs.append(session.result().output)
        assert outputs[0] == outputs[1]

    def test_trace_env_var_enables_and_is_equivalent(self, monkeypatch):
        app = get_application("normalize")
        streams = app.streams(APP_EVENTS, seed=5)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with TiltEngine(workers=1) as engine:
            plain = engine.run(app.program(), streams)
        monkeypatch.setenv("REPRO_TRACE", "1")
        with TiltEngine(workers=1) as engine:
            assert engine.tracer.enabled
            traced = engine.run(app.program(), streams)
            assert engine.tracer.drain()
        assert plain.output == traced.output

    def test_disabled_mode_records_zero_spans(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with TiltEngine(workers=2) as engine:
            run_traced_session(engine)
            assert engine.tracer is NULL_TRACER
            assert engine.tracer.drain() == []
        # an explicit opt-out beats the environment (matters under the
        # REPRO_TRACE=1 CI matrix entry)
        monkeypatch.setenv("REPRO_TRACE", "1")
        with TiltEngine(workers=2, trace=False) as engine:
            run_traced_session(engine)
            assert engine.tracer is NULL_TRACER

    def test_incremental_tick_spans_and_state_counters(self):
        with TiltEngine(workers=1, trace=True, incremental=True) as engine:
            run_traced_session(engine)
            records = engine.tracer.drain()
            names = {r.name for r in records}
            assert "emit.incremental" in names
            assert "executor.dispatch" not in names
            doc = engine.registry.to_json()
            hits = doc["repro_incremental_state_hits_total"]["series"][0]["value"]
            misses = doc["repro_incremental_state_misses_total"]["series"][0]["value"]
            assert misses >= 1
            assert hits >= 1  # every tick after the first reuses state

    def test_registry_sees_engine_and_session_counters(self):
        with TiltEngine(workers=1, trace=True) as engine:
            program = get_application("trading").program()
            engine.compile_cached(program)
            engine.compile_cached(program)  # same object: a cache hit
            run_traced_session(engine)
            doc = engine.registry.to_json()
            assert doc["repro_compile_cache_misses_total"]["series"][0]["value"] >= 1
            assert doc["repro_compile_cache_hits_total"]["series"][0]["value"] >= 1
            assert doc["repro_ticks_total"]["series"][0]["value"] >= 1
            assert doc["repro_tick_seconds"]["series"][0]["count"] >= 1
            backends = {
                tuple(s["labels"].items())
                for s in doc["repro_kernel_seconds_total"]["series"]
            }
            assert (("backend", "serial"),) in backends


class TestSessionMetricsRegistry:
    def test_quantiles_single_snapshot(self):
        dist = LatencyDistribution(capacity=16)
        for v in (0.1, 0.2, 0.3, 0.4):
            dist.record(v)
        p50, p99 = dist.quantiles([50.0, 99.0])
        assert p50 == pytest.approx(dist.percentile(50.0))
        assert p99 == pytest.approx(dist.percentile(99.0))
        assert LatencyDistribution().quantiles([50.0, 95.0]) == [0.0, 0.0]

    def test_bind_registry_single_write_path(self):
        reg = MetricsRegistry()
        m = SessionMetrics()
        m.bind_registry(reg)
        m.record_tick(input_events=10, output_snapshots=3, seconds=0.01)
        m.record_tick(input_events=0, output_snapshots=0, seconds=0.001, emitted=False)
        doc = reg.to_json()
        assert doc["repro_ticks_total"]["series"][0]["value"] == 2
        assert doc["repro_empty_ticks_total"]["series"][0]["value"] == 1
        assert doc["repro_ingested_events_total"]["series"][0]["value"] == 10
        assert doc["repro_tick_seconds"]["series"][0]["count"] == 2
        # the local view stays authoritative and identical
        assert m.ticks == 2 and m.input_events == 10


# ---------------------------------------------------------------------- #
# flight recorder + service wiring
# ---------------------------------------------------------------------- #
class TestFlightRecorder:
    @staticmethod
    def tick_records(tracer, duration_name="session.tick", tick=0):
        with tracer.span(duration_name, tick=tick):
            pass
        return tracer.drain()

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity_per_tenant=2)
        tracer = Tracer()
        for i in range(5):
            recorder.record_tick("t", self.tick_records(tracer, tick=i))
        recent = recorder.recent("t")
        assert len(recent) == 2
        assert recorder.summary()["tenants"]["t"]["ticks_recorded"] == 5

    def test_threshold_pins_with_context(self):
        recorder = FlightRecorder(slow_tick_threshold=1e-9, max_pinned=2)
        tracer = Tracer()
        for i in range(4):
            pinned = recorder.record_tick(
                "t", self.tick_records(tracer, tick=i), context={"output": "q"}
            )
            assert pinned is not None
            assert pinned.tick_index == i
            assert pinned.context == {"output": "q"}
        assert len(recorder.pinned()) == 2  # bounded evidence
        summary = recorder.summary()
        assert summary["tenants"]["t"]["slow_ticks"] == 4
        assert summary["pinned_slow_ticks"][-1]["tick_index"] == 3

    def test_no_threshold_never_pins(self):
        recorder = FlightRecorder()
        tracer = Tracer()
        assert recorder.record_tick("t", self.tick_records(tracer)) is None
        assert recorder.pinned() == []

    def test_chrome_trace_export(self):
        recorder = FlightRecorder()
        tracer = Tracer()
        recorder.record_tick("t", self.tick_records(tracer))
        doc = recorder.to_chrome_trace("t")
        assert doc["traceEvents"]
        json.dumps(doc)

    def test_service_pins_slow_ticks_into_stats(self):
        app = get_application("trading")
        with TiltEngine(workers=1, trace=True) as engine:
            with QueryService(engine, slow_tick_threshold=1e-9) as service:
                streams = app.streams(APP_EVENTS, seed=2)
                service.submit(
                    app.program(),
                    name="slow",
                    sources=sources_for_streams(streams, events_per_poll=200),
                )
                service.run_until_idle(max_ticks=50)
                stats = service.stats()
                assert stats.flight is not None
                assert stats.flight["tenants"]["slow"]["slow_ticks"] >= 1
                (pin, *_) = stats.flight["pinned_slow_ticks"]
                assert pin["tenant"] == "slow"
                assert "generated_source" in pin["context"]
                assert pin["span_tree"]["children"], "pinned tree lost its children"
                # tenant attribution flows from submit() into the spans
                tick = service.recorder.recent("slow")[-1].find("session.tick")[0]
                assert tick.record.attrs["tenant"] == "slow"

    def test_untraced_service_has_no_recorder(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with QueryService(workers=1) as service:
            assert service.recorder is None
            assert service.stats().flight is None


class TestTenantFailureSurfacing:
    def test_traceback_retained_and_logged(self, caplog):
        app = get_application("trading")
        with QueryService(workers=1) as service:
            service.submit(app.program(), name="bad")
            # structured payload into a scalar input fails inside the tick
            service.ingest("bad", [Event(1.0, 2.0, {"junk": 1.0})], stream="stock")
            with caplog.at_level(logging.ERROR, logger="repro.serve"):
                service.run_until_idle(max_ticks=5)
            row = service.stats().tenants["bad"]
            assert row["state"] == "failed"
            assert row["error"]
            assert "Traceback (most recent call last)" in row["traceback"]
            assert "QueryBuildError" in row["traceback"]
            failures = service.engine.registry.to_json()[
                "repro_tenant_failures_total"
            ]["series"][0]["value"]
            assert failures == 1
            assert any("isolated" in r.message for r in caplog.records)

    def test_healthy_tenant_has_empty_traceback(self):
        app = get_application("trading")
        with QueryService(workers=1) as service:
            streams = app.streams(200, seed=1)
            service.submit(
                app.program(),
                name="ok",
                sources=sources_for_streams(streams, events_per_poll=100),
            )
            service.run_until_idle(max_ticks=20)
            assert service.stats().tenants["ok"]["traceback"] == ""


# ---------------------------------------------------------------------- #
# registry exposition hardening
# ---------------------------------------------------------------------- #
class TestRegistryHardening:
    def test_invalid_metric_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("1bad_total", "has-dash_total", "has space_total", ""):
            with pytest.raises(ValueError):
                reg.counter(bad)
        reg.counter("repro:rule_total")  # colons are legal (recording rules)

    def test_unit_suffix_conventions_enforced(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_things")  # counter must end _total
        with pytest.raises(ValueError):
            reg.gauge("repro_things_total")  # gauge must not
        with pytest.raises(ValueError):
            reg.histogram("repro_lat_total")  # histogram must not
        reg.counter("repro_things_total")
        reg.gauge("repro_things")
        reg.histogram("repro_lat_seconds")

    def test_invalid_label_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_l_total", **{"bad-name": "x"})
        with pytest.raises(ValueError):
            reg.counter("repro_l_total", __reserved="x")
        with pytest.raises(ValueError):
            reg.histogram("repro_h_seconds", le="0.5")  # reserved on histograms
        reg.counter("repro_l_total", le="fine")  # only histograms reserve le

    def test_labels_validated_on_existing_family_too(self):
        """A bad label set must fail even when the family already exists."""
        reg = MetricsRegistry()
        reg.counter("repro_l_total", backend="thread")
        with pytest.raises(ValueError):
            reg.counter("repro_l_total", **{"bad-name": "x"})

    def test_label_values_escaped_in_exposition(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_esc_total", "help", path='C:\\dir', q='say "hi"', nl="a\nb"
        ).inc()
        text = reg.to_prometheus()
        line = next(l for l in text.splitlines() if l.startswith("repro_esc_total{"))
        assert '\\\\dir' in line        # backslash doubled
        assert '\\"hi\\"' in line       # quotes escaped
        assert "a\\nb" in line          # newline escaped
        assert "\n" not in line

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("repro_esc", 'line1\nline2 with "quotes" and \\slash')
        text = reg.to_prometheus()
        help_line = next(l for l in text.splitlines() if l.startswith("# HELP"))
        # HELP escapes backslash + newline only; quotes stay literal
        assert help_line == '# HELP repro_esc line1\\nline2 with "quotes" and \\\\slash'


# ---------------------------------------------------------------------- #
# adaptive flight recorder
# ---------------------------------------------------------------------- #
class TestAdaptiveFlightRecorder:
    @staticmethod
    def tick(duration, tick=0):
        return [
            SpanRecord(
                "session.tick", f"s{tick}", None, 100.0 + tick, duration,
                duration, {"tick": tick}, 1, 1,
            )
        ]

    def make(self, **kw):
        kw.setdefault("slow_tick_threshold", FlightRecorder.ADAPTIVE)
        kw.setdefault("adaptive_min_ticks", 8)
        kw.setdefault("adaptive_history", 64)
        return FlightRecorder(**kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(slow_tick_threshold="sometimes")
        with pytest.raises(ValueError):
            FlightRecorder(slow_tick_threshold="adaptive", adaptive_multiplier=1.0)
        with pytest.raises(ValueError):
            FlightRecorder(adaptive_min_ticks=1)
        with pytest.raises(ValueError):
            FlightRecorder(adaptive_min_ticks=32, adaptive_history=16)

    def test_disarmed_until_min_ticks(self):
        recorder = self.make()
        for i in range(7):
            assert recorder.record_tick("t", self.tick(0.001, i)) is None
        # a wild outlier before the baseline exists must not pin
        assert recorder.record_tick("t", self.tick(5.0, 7)) is None

    def test_relative_outlier_pins_absolute_quiet_fleet(self):
        """Microsecond ticks (far below any sane fixed cutoff) still get
        their own outliers pinned once the baseline is armed."""
        recorder = self.make(adaptive_multiplier=3.0)
        for i in range(16):
            assert recorder.record_tick("t", self.tick(10e-6, i)) is None
        pinned = recorder.record_tick("t", self.tick(100e-6, 16))
        assert pinned is not None
        assert pinned.duration == pytest.approx(100e-6)
        summary = recorder.summary()
        assert summary["adaptive"] is True
        assert summary["tenants"]["t"]["slow_ticks"] == 1
        assert summary["tenants"]["t"]["adaptive_threshold_ms"] is not None

    def test_normal_ticks_do_not_pin(self):
        recorder = self.make(adaptive_multiplier=3.0)
        for i in range(64):
            assert recorder.record_tick("t", self.tick(0.001, i)) is None
        assert recorder.pinned() == []

    def test_outlier_judged_against_prior_history(self):
        """The threshold is computed before the tick joins the history, so
        an outlier cannot raise its own bar."""
        recorder = self.make(adaptive_multiplier=2.0, adaptive_min_ticks=8)
        for i in range(8):
            recorder.record_tick("t", self.tick(0.001, i))
        # p99 of history = 1 ms -> bar 2 ms; a 2.5 ms tick pins even though
        # a p99 computed *with* it would be 2.5 ms (bar 5 ms)
        assert recorder.record_tick("t", self.tick(0.0025, 8)) is not None

    def test_per_tenant_baselines_are_independent(self):
        recorder = self.make(adaptive_multiplier=3.0)
        for i in range(16):
            recorder.record_tick("fast", self.tick(10e-6, i))
            recorder.record_tick("slow", self.tick(0.01, i))
        # 1 ms: a 100x outlier for "fast", dead normal for "slow"
        assert recorder.record_tick("fast", self.tick(0.001, 16)) is not None
        assert recorder.record_tick("slow", self.tick(0.001, 16)) is None

    def test_fixed_mode_summary_has_no_adaptive_keys(self):
        recorder = FlightRecorder(slow_tick_threshold=0.5)
        tracer = Tracer()
        with tracer.span("session.tick", tick=0):
            pass
        recorder.record_tick("t", tracer.drain())
        summary = recorder.summary()
        assert summary["adaptive"] is False
        assert "adaptive_threshold_ms" not in summary["tenants"]["t"]

    def test_service_accepts_adaptive_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with QueryService(workers=1, slow_tick_threshold="adaptive") as service:
            assert service.recorder.adaptive
            assert service.stats().flight["adaptive"] is True


# ---------------------------------------------------------------------- #
# structured JSON logging
# ---------------------------------------------------------------------- #
class TestJsonLogging:
    def make_logger(self, name, tracer=None):
        import io

        from repro.obs import configure_json_logging

        stream = io.StringIO()
        handler = configure_json_logging(name, tracer=tracer, stream=stream)
        return logging.getLogger(name), handler, stream

    def test_record_is_one_json_line_with_extras(self):
        logger, handler, stream = self.make_logger("repro.test.json1")
        try:
            logger.info("tick done", extra={"tenant": "t0", "tick": 17})
            line = stream.getvalue().strip()
            assert "\n" not in line
            doc = json.loads(line)
            assert doc["message"] == "tick done"
            assert doc["level"] == "INFO"
            assert doc["logger"] == "repro.test.json1"
            assert doc["tenant"] == "t0" and doc["tick"] == 17
            assert isinstance(doc["ts"], float)
        finally:
            logger.removeHandler(handler)

    def test_exception_renders_into_field_not_message(self):
        logger, handler, stream = self.make_logger("repro.test.json2")
        try:
            try:
                raise ValueError("boom")
            except ValueError:
                logger.exception("tenant failed")
            line = stream.getvalue().strip()
            assert "\n" not in line  # still one JSON line
            doc = json.loads(line)
            assert doc["message"] == "tenant failed"
            assert "ValueError: boom" in doc["exception"]
        finally:
            logger.removeHandler(handler)

    def test_span_correlation(self):
        tracer = Tracer()
        logger, handler, stream = self.make_logger("repro.test.json3", tracer=tracer)
        try:
            logger.info("outside")
            with tracer.span("session.tick"):
                logger.info("inside")
            docs = [json.loads(l) for l in stream.getvalue().splitlines()]
            assert docs[0]["span_id"] is None
            assert docs[1]["span_id"] is not None
            [record] = tracer.drain()
            assert docs[1]["span_id"] == record.span_id
        finally:
            logger.removeHandler(handler)

    def test_configure_is_idempotent(self):
        from repro.obs import configure_json_logging

        logger = logging.getLogger("repro.test.json4")
        first = configure_json_logging("repro.test.json4")
        second = configure_json_logging("repro.test.json4")
        try:
            installed = [
                h for h in logger.handlers if getattr(h, "_repro_json_handler", False)
            ]
            assert installed == [second]
            assert first is not second
        finally:
            logger.removeHandler(second)

    def test_service_failure_log_carries_structured_fields(self):
        import io

        from repro.obs import JsonFormatter

        app = get_application("trading")
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger = logging.getLogger("repro.serve")
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.ERROR)
        try:
            with QueryService(workers=1) as service:
                service.submit(app.program(), name="bad")
                service.ingest("bad", [Event(0.0, 10.0, 1.0), Event(5.0, 15.0, 2.0)])
                service.run_until_idle(max_ticks=5)
            doc = json.loads(stream.getvalue().strip().splitlines()[0])
            assert doc["tenant"] == "bad"
            assert doc["tick"] == 0
            assert "Overlapping" in doc["tenant_error"]
            assert "Traceback" in doc["exception"]
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
