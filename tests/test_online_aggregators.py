"""Unit tests for the online sliding-window aggregators.

Focus on the deaccumulation edge cases that the differential harness only
hits probabilistically: single-element windows, fully-masked lanes, NaN
inputs, and the extended-precision (longdouble) variance/stddev prefix
state used by the incremental execution path.

:class:`RecomputeAggregator` is the semantic reference throughout — it
re-folds the window on every query, so whatever it answers *is* the
aggregate's definition applied to the current window contents.
"""

import math

import numpy as np
import pytest

from repro.core.codegen.incremental import ExtendablePrefixIndex, site_strategy
from repro.core.runtime.ssbuf import SSBuf
from repro.windowing import (
    COUNT,
    FIRST,
    LAST,
    MAX,
    MEAN,
    MIN,
    PRODUCT,
    STDDEV,
    SUM,
    SUM_SQUARES,
    VARIANCE,
    RangeAggregator,
    RecomputeAggregator,
    SubtractOnEvict,
    TwoStacksAggregator,
    make_online_aggregator,
)
from repro.windowing.functions import builtin_aggregates

INVERTIBLE = [SUM, COUNT, MEAN, SUM_SQUARES, VARIANCE, STDDEV]


def drive(online, reference, ops):
    """Apply the same insert/evict script to both aggregators, checking the
    query after every step."""
    for op, value in ops:
        if op == "insert":
            online.insert(value)
            reference.insert(value)
        else:
            online.evict(value)
            reference.evict(value)
        got, got_ok = online.query()
        want, want_ok = reference.query()
        assert got_ok == want_ok, (op, value)
        if want_ok:
            # abs=1e-6 leaves room for deacc cancellation noise: a
            # single-element stddev is sqrt(sumsq - sum²/1), an exact zero
            # for recompute but sqrt(O(eps)) ≈ 1e-8 for the rotated state
            assert got == pytest.approx(want, rel=1e-7, abs=1e-6), (op, value)


def sliding_script(values, window):
    ops = []
    for i, v in enumerate(values):
        ops.append(("insert", v))
        if i >= window:
            ops.append(("evict", values[i - window]))
    return ops


class TestSubtractOnEvict:
    @pytest.mark.parametrize("agg", INVERTIBLE, ids=lambda a: a.name)
    def test_sliding_window_matches_recompute(self, agg):
        rng = np.random.default_rng(7)
        values = rng.uniform(-3.0, 5.0, 300).tolist()
        drive(SubtractOnEvict(agg), RecomputeAggregator(agg), sliding_script(values, 17))

    @pytest.mark.parametrize("agg", INVERTIBLE, ids=lambda a: a.name)
    def test_single_element_window(self, agg):
        """Window of size one: every tick is an insert immediately followed
        by the previous value's evict — the state repeatedly passes through
        the 'almost empty' regime where deacc cancellation error shows up."""
        rng = np.random.default_rng(8)
        values = rng.uniform(0.5, 2.0, 120).tolist()
        drive(SubtractOnEvict(agg), RecomputeAggregator(agg), sliding_script(values, 1))

    def test_empty_after_full_drain_is_phi(self):
        soe = SubtractOnEvict(SUM)
        for v in (1.5, 2.5, -4.0):
            soe.insert(v)
        for v in (1.5, 2.5, -4.0):
            soe.evict(v)
        assert len(soe) == 0
        assert soe.query() == (0.0, False)

    def test_variance_drain_reaccumulate(self):
        """Draining to empty must fully reset the moment state: a fresh
        window accumulated after the drain matches a fresh reference."""
        soe = SubtractOnEvict(VARIANCE)
        for v in (10.0, 12.0, 14.0):
            soe.insert(v)
        for v in (10.0, 12.0, 14.0):
            soe.evict(v)
        ref = RecomputeAggregator(VARIANCE)
        drive(soe, ref, sliding_script([3.0, 5.0, 7.0, 9.0], 3))

    def test_nan_poisons_sum_permanently(self):
        """nan - nan == nan: once a NaN enters an invertible state, evicting
        it cannot restore the state.  This is a documented limitation of
        subtract-on-evict — recompute recovers, SoE does not — and the
        reason NaN-laden inputs should mask NaNs out (valid=False) rather
        than feed them through deaccumulation."""
        soe = SubtractOnEvict(SUM)
        soe.insert(float("nan"))
        soe.insert(1.0)
        soe.evict(float("nan"))
        value, ok = soe.query()
        assert ok and math.isnan(value)
        # recompute's window no longer contains the NaN, so it recovers
        ref = RecomputeAggregator(SUM)
        ref.insert(float("nan"))
        ref.insert(1.0)
        ref.evict(float("nan"))
        value, ok = ref.query()
        assert ok and value == 1.0

    def test_rejects_non_invertible(self):
        with pytest.raises(ValueError):
            SubtractOnEvict(MAX)
        with pytest.raises(ValueError):
            SubtractOnEvict(FIRST)


class TestTwoStacks:
    @pytest.mark.parametrize("agg", [MAX, MIN, PRODUCT], ids=lambda a: a.name)
    def test_sliding_window_matches_recompute(self, agg):
        rng = np.random.default_rng(9)
        values = rng.uniform(0.25, 4.0, 300).tolist()
        drive(TwoStacksAggregator(agg), RecomputeAggregator(agg), sliding_script(values, 23))

    def test_flip_preserves_order_and_aggregate(self):
        ts = TwoStacksAggregator(MAX)
        for v in (3.0, 9.0, 1.0):
            ts.insert(v)
        ts.evict()  # flips the back stack; window is now [9, 1]
        assert ts.query() == (9.0, True)
        ts.evict()
        assert ts.query() == (1.0, True)
        ts.insert(5.0)  # straddles front (old) and back (new) stacks
        assert ts.query() == (5.0, True)
        assert len(ts) == 2

    def test_no_merge_fallback(self):
        """An aggregate with neither deacc nor merge forces the
        re-accumulation fallback when the window straddles both stacks.
        (A commutative one: the flip folds newest-first, so order-dependent
        aggregates like FIRST/LAST are escalated to Recompute instead of
        ever reaching two-stacks — see :func:`make_online_aggregator`.)"""
        from repro.windowing.functions import custom_aggregate

        osum = custom_aggregate(
            "osum", init=lambda: 0.0, acc=lambda s, v: s + v, result=lambda s: s
        )
        assert not osum.invertible and not osum.mergeable
        ts = TwoStacksAggregator(osum)
        ref = RecomputeAggregator(osum)
        rng = np.random.default_rng(10)
        drive(ts, ref, sliding_script(rng.uniform(0, 1, 60).tolist(), 7))

    def test_evict_empty_raises(self):
        ts = TwoStacksAggregator(MAX)
        with pytest.raises(IndexError):
            ts.evict()
        ts.insert(1.0)
        ts.evict()
        with pytest.raises(IndexError):
            ts.evict()

    def test_empty_is_phi(self):
        ts = TwoStacksAggregator(MIN)
        assert ts.query() == (0.0, False)
        ts.insert(2.0)
        ts.evict()
        assert ts.query() == (0.0, False)


class TestEscalation:
    def test_make_online_aggregator_picks_cheapest_capable(self):
        assert isinstance(make_online_aggregator(SUM), SubtractOnEvict)
        assert isinstance(make_online_aggregator(VARIANCE), SubtractOnEvict)
        assert isinstance(make_online_aggregator(MAX), TwoStacksAggregator)
        assert isinstance(make_online_aggregator(PRODUCT), TwoStacksAggregator)
        assert isinstance(make_online_aggregator(FIRST), RecomputeAggregator)
        assert isinstance(make_online_aggregator(LAST), RecomputeAggregator)

    def test_site_strategy_matches_capabilities(self):
        strategies = {a.name: site_strategy(a) for a in builtin_aggregates().values()}
        assert strategies["sum"] == "prefix"
        assert strategies["variance"] == "prefix"
        assert strategies["stddev"] == "prefix"
        assert strategies["max"] == "two-stacks"
        assert strategies["product"] == "two-stacks"
        assert strategies["first"] == "refold"


def reference_query(buf, agg, window_starts, window_ends):
    return RangeAggregator(buf, agg).query(
        np.asarray(window_starts, dtype=np.float64),
        np.asarray(window_ends, dtype=np.float64),
    )


def ingest_chunked(site, buf, chunks):
    """Feed ``buf`` to the site as successive progressively-longer prefixes,
    mimicking how carry-over grows tick by tick.  Prefix *sub-buffers* (not
    ``slice``) on purpose: ``slice`` clips the spanning snapshot to the cut
    point, and sites must never ingest such phantom snapshots — ingest is
    horizon-idempotent, so re-feeding a longer prefix appends only the tail.
    """
    n = len(buf)
    times, values, valid = buf.times, buf.values, buf.valid
    for k in np.linspace(1, n, chunks).astype(int):
        prefix = SSBuf(times[:k], values[:k], valid[:k], start_time=buf.start_time)
        site.ingest(prefix, None)


class TestExtendablePrefixIndex:
    def _buf(self, n=400, seed=11, mean=0.0, masked=None):
        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.uniform(0.2, 1.0, n))
        values = mean + rng.normal(0.0, 1.0, n)
        valid = np.ones(n, dtype=bool)
        if masked is not None:
            valid[masked] = False
        return SSBuf(times, values, valid, start_time=0.0)

    @pytest.mark.parametrize(
        "agg", [SUM, COUNT, MEAN, SUM_SQUARES, VARIANCE, STDDEV], ids=lambda a: a.name
    )
    def test_chunked_ingest_matches_range_aggregator(self, agg):
        buf = self._buf()
        site = ExtendablePrefixIndex(agg, -1)
        ingest_chunked(site, buf, chunks=9)
        ws = np.arange(0.0, buf.end_time - 5.0, 3.7)
        we = ws + 5.0
        got, got_ok = site.query(ws, we)
        want, want_ok = reference_query(buf, agg, ws, we)
        np.testing.assert_array_equal(got_ok, want_ok)
        np.testing.assert_allclose(got[got_ok], want[want_ok], rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("agg", [VARIANCE, STDDEV], ids=lambda a: a.name)
    def test_extended_precision_large_mean(self, agg):
        """Catastrophic-cancellation stress: values near 1e8 with unit
        spread.  The naive float64 sum-of-squares prefix loses the entire
        signal here; the longdouble fixed-center state must stay accurate
        across chunk boundaries (each chunk extends the same prefixes, so
        the center cannot be re-picked per chunk)."""
        assert agg.prefix_extended_precision
        buf = self._buf(mean=1e8, seed=12)
        site = ExtendablePrefixIndex(agg, -1)
        assert site.dtype == np.longdouble
        ingest_chunked(site, buf, chunks=13)
        ws = np.arange(0.0, buf.end_time - 8.0, 2.9)
        we = ws + 8.0
        got, got_ok = site.query(ws, we)
        want, want_ok = reference_query(buf, agg, ws, we)
        np.testing.assert_array_equal(got_ok, want_ok)
        # spread is O(1), so answers are O(1): demand real relative accuracy
        np.testing.assert_allclose(got[got_ok], want[want_ok], rtol=1e-6)

    def test_all_masked_lanes_are_phi(self):
        buf = self._buf(n=100, masked=slice(None))
        site = ExtendablePrefixIndex(SUM, -1)
        ingest_chunked(site, buf, chunks=4)
        ws = np.array([0.0, 10.0, 20.0])
        got, got_ok = site.query(ws, ws + 6.0)
        assert not got_ok.any()
        np.testing.assert_array_equal(got, 0.0)

    def test_masked_run_matches_reference(self):
        buf = self._buf(n=300, masked=slice(80, 200))
        site = ExtendablePrefixIndex(MEAN, -1)
        ingest_chunked(site, buf, chunks=6)
        ws = np.arange(0.0, buf.end_time - 4.0, 1.3)
        got, got_ok = site.query(ws, ws + 4.0)
        want, want_ok = reference_query(buf, MEAN, ws, ws + 4.0)
        np.testing.assert_array_equal(got_ok, want_ok)
        np.testing.assert_allclose(got[got_ok], want[want_ok], rtol=1e-9, atol=1e-9)

    def test_single_snapshot_windows(self):
        buf = SSBuf([1.0, 2.0, 3.0], [5.0, 7.0, 11.0], start_time=0.0)
        site = ExtendablePrefixIndex(SUM, -1)
        site.ingest(buf, None)
        # each window covers exactly one interval
        got, got_ok = site.query(
            np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0])
        )
        assert got_ok.all()
        np.testing.assert_allclose(got, [5.0, 7.0, 11.0])

    def test_window_before_data_is_phi(self):
        buf = SSBuf([10.0, 11.0], [1.0, 2.0], start_time=9.0)
        site = ExtendablePrefixIndex(COUNT, -1)
        site.ingest(buf, None)
        got, got_ok = site.query(np.array([2.0]), np.array([5.0]))
        assert not got_ok[0] and got[0] == 0.0

    def test_prune_preserves_answers_and_drops_state(self):
        buf = self._buf(n=600, seed=13)
        site = ExtendablePrefixIndex(VARIANCE, -1)
        ingest_chunked(site, buf, chunks=8)
        before = site.retained()
        cut = float(buf.times[400])
        site.prune(cut)
        assert site.retained() < before
        ws = np.arange(cut + 1.0, buf.end_time - 5.0, 2.1)
        got, got_ok = site.query(ws, ws + 5.0)
        want, want_ok = reference_query(buf, VARIANCE, ws, ws + 5.0)
        np.testing.assert_array_equal(got_ok, want_ok)
        np.testing.assert_allclose(got[got_ok], want[want_ok], rtol=1e-9, atol=1e-9)

    def test_reingest_is_idempotent(self):
        buf = self._buf(n=50, seed=14)
        site = ExtendablePrefixIndex(SUM, -1)
        site.ingest(buf, None)
        site.ingest(buf, None)  # same tick replay: must be a no-op
        assert site.retained() == 50
        ws = np.array([buf.start_time])
        got, _ = site.query(ws, np.array([buf.end_time]))
        want, _ = reference_query(buf, SUM, ws, np.array([buf.end_time]))
        np.testing.assert_allclose(got, want, rtol=1e-9)
