"""Tests for the shared scalar operator semantics (φ-propagation rules)."""

import math

import pytest

from repro.core.ops import eval_binop, eval_call, eval_unop
from repro.errors import CompilationError


class TestBinop:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 2.0, 3.0, 5.0),
            ("-", 2.0, 3.0, -1.0),
            ("*", 2.0, 3.0, 6.0),
            ("/", 6.0, 3.0, 2.0),
            ("%", 7.0, 2.0, 1.0),
            ("**", 2.0, 3.0, 8.0),
            ("min", 2.0, 3.0, 2.0),
            ("max", 2.0, 3.0, 3.0),
            (">", 2.0, 3.0, 0.0),
            ("<", 2.0, 3.0, 1.0),
            (">=", 3.0, 3.0, 1.0),
            ("<=", 4.0, 3.0, 0.0),
            ("==", 3.0, 3.0, 1.0),
            ("!=", 3.0, 3.0, 0.0),
            ("and", 1.0, 0.0, 0.0),
            ("and", 2.0, 5.0, 1.0),
            ("or", 0.0, 0.0, 0.0),
            ("or", 0.0, 2.0, 1.0),
        ],
    )
    def test_valid_results(self, op, a, b, expected):
        value, ok = eval_binop(op, a, b)
        assert ok
        assert value == pytest.approx(expected)

    def test_division_by_zero_is_phi(self):
        assert eval_binop("/", 1.0, 0.0) == (0.0, False)
        assert eval_binop("%", 1.0, 0.0) == (0.0, False)

    def test_unknown_operator(self):
        with pytest.raises(CompilationError):
            eval_binop("^^", 1.0, 2.0)


class TestUnop:
    def test_basics(self):
        assert eval_unop("neg", 2.0) == (-2.0, True)
        assert eval_unop("abs", -2.0) == (2.0, True)
        assert eval_unop("not", 0.0) == (1.0, True)
        assert eval_unop("not", 3.0) == (0.0, True)
        assert eval_unop("floor", 2.7)[0] == 2.0
        assert eval_unop("ceil", 2.1)[0] == 3.0
        assert eval_unop("sign", -5.0)[0] == -1.0

    def test_domain_errors_are_phi(self):
        assert eval_unop("sqrt", -1.0) == (0.0, False)
        assert eval_unop("log", 0.0) == (0.0, False)
        assert eval_unop("log", -5.0) == (0.0, False)

    def test_sqrt_exp_log(self):
        assert eval_unop("sqrt", 9.0)[0] == pytest.approx(3.0)
        assert eval_unop("exp", 0.0)[0] == pytest.approx(1.0)
        assert eval_unop("log", math.e)[0] == pytest.approx(1.0)

    def test_unknown_operator(self):
        with pytest.raises(CompilationError):
            eval_unop("nope", 1.0)


class TestCall:
    def test_functions(self):
        assert eval_call("sqrt", [16.0])[0] == pytest.approx(4.0)
        assert eval_call("pow", [2.0, 10.0])[0] == pytest.approx(1024.0)
        assert eval_call("sin", [0.0])[0] == pytest.approx(0.0)
        assert eval_call("cos", [0.0])[0] == pytest.approx(1.0)
        assert eval_call("atan2", [0.0, 1.0])[0] == pytest.approx(0.0)
        assert eval_call("abs", [-3.0])[0] == 3.0
        assert eval_call("floor", [2.9])[0] == 2.0
        assert eval_call("ceil", [2.1])[0] == 3.0

    def test_domain_error(self):
        assert eval_call("sqrt", [-1.0]) == (0.0, False)
        assert eval_call("log", [0.0]) == (0.0, False)

    def test_unknown_function(self):
        with pytest.raises(CompilationError):
            eval_call("frobnicate", [1.0])
