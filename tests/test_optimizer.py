"""Tests for the optimizer: constant folding, fusion, DCE, pass manager."""

import numpy as np
import pytest

from repro.core.codegen import compile_program, evaluate_program
from repro.core.frontend.query import LEFT, PAYLOAD, RIGHT, source
from repro.core.ir import (
    BinOp,
    Const,
    IRBuilder,
    Let,
    Phi,
    TDom,
    TIndex,
    TemporalExpr,
    Var,
    format_program,
    when,
)
from repro.core.lineage import resolve_boundaries
from repro.core.optimizer import (
    PassManager,
    constant_fold_expr,
    constant_folding,
    dead_expression_elimination,
    default_pass_manager,
    fuse_program,
    optimize,
    shift_expr,
    simplify_lets,
    substitute_vars,
)
from repro.core.runtime.ssbuf import ssbuf_from_stream
from repro.core.runtime.stream import EventStream
from repro.windowing import MEAN, SUM

E = PAYLOAD


def trend_query():
    stock = source("stock")
    avg10 = stock.window(10, 1).aggregate(MEAN).named("avg10")
    avg20 = stock.window(20, 1).aggregate(MEAN).named("avg20")
    return avg10.join(avg20, LEFT - RIGHT).where(E > 0).named("trend")


class TestConstantFolding:
    def test_arithmetic_folds(self):
        assert constant_fold_expr(Const(2.0) + Const(3.0)) == Const(5.0)
        assert constant_fold_expr(Const(2.0) * Const(3.0) - Const(1.0)) == Const(5.0)

    def test_phi_propagates(self):
        assert isinstance(constant_fold_expr(Const(1.0) + Phi()), Phi)
        assert isinstance(constant_fold_expr(Const(1.0) / Const(0.0)), Phi)

    def test_identities(self):
        x = TIndex("x", 0.0)
        assert constant_fold_expr(x + 0.0) == x
        assert constant_fold_expr(x * 1.0) == x
        assert constant_fold_expr(0.0 + x) == x
        assert constant_fold_expr(x / 1.0) == x

    def test_conditional_folding(self):
        x = TIndex("x", 0.0)
        assert constant_fold_expr(when(Const(1.0), x)) == x
        assert isinstance(constant_fold_expr(when(Const(0.0), x)), Phi)
        assert isinstance(constant_fold_expr(when(Phi(), x)), Phi)

    def test_isvalid_and_coalesce_folding(self):
        x = TIndex("x", 0.0)
        assert constant_fold_expr(Const(5.0).is_valid()) == Const(1.0)
        assert constant_fold_expr(Phi().is_valid()) == Const(0.0)
        assert constant_fold_expr(Phi().coalesce(x)) == x
        assert constant_fold_expr(Const(2.0).coalesce(x)) == Const(2.0)

    def test_call_folding(self):
        from repro.core.ir import Call

        assert constant_fold_expr(Call("sqrt", (Const(16.0),))) == Const(4.0)
        assert isinstance(constant_fold_expr(Call("sqrt", (Const(-1.0),))), Phi)


class TestRewriteUtilities:
    def test_shift_expr(self):
        from repro.core.ir import Reduce, TWindow

        expr = TIndex("x", -1.0) + Reduce(SUM, TWindow("x", -10.0, 0.0))
        shifted = shift_expr(expr, -5.0)
        assert TIndex("x", -6.0) in (shifted.lhs, shifted.rhs)
        reduce_node = shifted.rhs if isinstance(shifted.rhs, Reduce) else shifted.lhs
        assert reduce_node.window.start_offset == -15.0

    def test_substitute_vars(self):
        expr = Var("a") + Var("b")
        out = substitute_vars(expr, {"a": Const(1.0)})
        assert out == BinOp("+", Const(1.0), Var("b"))


class TestFusion:
    def test_trend_query_fully_fuses(self):
        program = trend_query().to_program()
        result = fuse_program(program)
        assert result.expressions_before == 4
        assert result.fully_fused
        assert result.inlined_point_refs >= 3
        fused = result.program
        # the single fused expression is defined over the precision-1 domain
        assert len(fused.exprs) == 1
        assert fused.output_expr.tdom.precision == 1.0

    def test_window_over_pointwise_producer_becomes_element_map(self):
        stock = source("stock")
        squares = stock.select(E * E).named("squares")
        query = squares.window(10, 1).aggregate(SUM).named("sum_sq")
        result = fuse_program(query.to_program())
        assert result.inlined_window_refs == 1
        assert result.fully_fused

    def test_fusion_preserves_semantics(self, random_walk_stream):
        program = trend_query().to_program()
        fused = fuse_program(program).program
        buf = ssbuf_from_stream(random_walk_stream)
        boundary = resolve_boundaries(program)
        env_a = evaluate_program(program, {"stock": buf}, 0.0, 300.0, boundary=boundary)
        env_b = evaluate_program(fused, {"stock": buf}, 0.0, 300.0, boundary=boundary)
        grid = np.linspace(25.0, 295.0, 200)
        av, ak = env_a[program.output].values_at(grid)
        bv, bk = env_b[fused.output].values_at(grid)
        assert np.array_equal(ak, bk)
        assert np.allclose(av[ak], bv[bk])

    def test_incompatible_precisions_not_fused(self):
        b = IRBuilder()
        x = b.stream("x")
        coarse = b.define("coarse", x.window(-10, 0).reduce(SUM), precision=10)
        fine = b.define("fine", x.window(-2, 0).reduce(SUM), precision=2)
        b.define("combo", coarse.at() + fine.at(), precision=0)
        result = fuse_program(b.build(output="combo"))
        # mixed precisions: the producers stay materialized
        assert not result.fully_fused
        assert len(result.program.exprs) == 3


class TestCleanupPasses:
    def test_dead_expression_elimination(self):
        b = IRBuilder()
        x = b.stream("x")
        b.define("unused", x.at(0.0) * 2.0)
        b.define("out", x.at(0.0) + 1.0)
        program = b.build(output="out")
        cleaned = dead_expression_elimination(program)
        assert cleaned.defined_names() == ("out",)

    def test_simplify_lets_inlines_trivial_bindings(self):
        body = Let((("a", Const(3.0)), ("b", Var("a") + TIndex("x", 0.0))), Var("b") * 1.0)
        program = _single_expr_program(body)
        simplified = simplify_lets(constant_folding(program))
        text = format_program(simplified)
        assert "a =" not in text  # constant binding inlined away

    def test_pass_manager_records_history(self):
        program = trend_query().to_program()
        pm = default_pass_manager()
        optimized = pm.run(program)
        assert len(pm.history) == len(pm.passes)
        assert pm.history[0].expressions_before == 4
        assert "operator-fusion" in pm.summary()
        assert len(optimized.exprs) == 1

    def test_optimize_without_fusion(self):
        program = trend_query().to_program()
        optimized = optimize(program, enable_fusion=False)
        assert len(optimized.exprs) == 4


def _single_expr_program(expr):
    te = TemporalExpr("out", TDom(), expr)
    from repro.core.ir import TiltProgram

    return TiltProgram(("x",), (te,), "out")
