"""The perf-regression gate (``benchmarks/check_regression.py``).

The gate's contract, test-covered as the ISSUE requires:

* a run matching its baseline **passes**, a synthetic 20% throughput drop
  **fails** (exit code 1 through the CLI);
* a baseline row missing from the current run fails — dropping a
  benchmark must not read as "no regressions" — while current-only rows
  are informational;
* hardware calibration scales the expected throughput by the score ratio
  and is clamped, so a bogus score cannot waive the gate;
* the committed baseline file itself stays well-formed.

``check_regression`` lives in ``benchmarks/`` (not the package), so the
suite imports it off a path fixture — no install step needed.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BASELINE = BENCH_DIR / "results" / "baseline_sustained.json"


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "check_regression", BENCH_DIR / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = _load_module()


def result_file(tmp_path, name, rows, *, hardware_score=1.0):
    """Write a benchutil-schema JSON file and return its path as str."""
    payload = {
        "results": [
            {"name": n, "params": p, "events_per_sec": eps} for n, p, eps in rows
        ],
        "meta": {"hardware_score": hardware_score},
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def rows(self, eps):
        return [("sustained/ysb", {"workers": 1}, eps)]

    def test_identical_runs_pass(self, tmp_path):
        base = result_file(tmp_path, "base.json", self.rows(100_000.0))
        cur = result_file(tmp_path, "cur.json", self.rows(100_000.0))
        ok, findings, factor = gate.check(base, cur)
        assert ok
        assert factor == 1.0
        assert [f["status"] for f in findings] == ["pass"]

    def test_twenty_percent_slowdown_fails(self, tmp_path):
        base = result_file(tmp_path, "base.json", self.rows(100_000.0))
        cur = result_file(tmp_path, "cur.json", self.rows(80_000.0))
        ok, findings, _ = gate.check(base, cur)  # default tolerance 15%
        assert not ok
        (finding,) = findings
        assert finding["status"] == "fail"
        assert finding["ratio"] == pytest.approx(0.8)
        assert "below floor" in finding["detail"]

    def test_drop_within_tolerance_passes(self, tmp_path):
        base = result_file(tmp_path, "base.json", self.rows(100_000.0))
        cur = result_file(tmp_path, "cur.json", self.rows(90_000.0))
        ok, findings, _ = gate.check(base, cur)
        assert ok and findings[0]["status"] == "pass"

    def test_missing_baseline_row_fails(self, tmp_path):
        base = result_file(
            tmp_path,
            "base.json",
            self.rows(100_000.0) + [("sustained/ysb", {"workers": 2}, 150_000.0)],
        )
        cur = result_file(tmp_path, "cur.json", self.rows(100_000.0))
        ok, findings, _ = gate.check(base, cur)
        assert not ok
        statuses = {json.dumps(f["params"]): f["status"] for f in findings}
        assert statuses == {'{"workers": 1}': "pass", '{"workers": 2}': "missing"}

    def test_new_current_row_is_informational(self, tmp_path):
        base = result_file(tmp_path, "base.json", self.rows(100_000.0))
        cur = result_file(
            tmp_path,
            "cur.json",
            self.rows(100_000.0) + [("sustained/new-bench", {}, 5.0)],
        )
        ok, findings, _ = gate.check(base, cur)
        assert ok  # a new row never fails the gate
        assert {f["status"] for f in findings} == {"pass", "new"}

    def test_rows_matched_by_params_not_just_name(self, tmp_path):
        """Same name, different params → different benchmarks."""
        base = result_file(tmp_path, "base.json", self.rows(100_000.0))
        cur = result_file(
            tmp_path, "cur.json", [("sustained/ysb", {"workers": 8}, 100_000.0)]
        )
        ok, findings, _ = gate.check(base, cur)
        assert not ok
        assert {f["status"] for f in findings} == {"missing", "new"}

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            gate.compare({}, {}, tolerance=1.0)
        with pytest.raises(ValueError):
            gate.compare({}, {}, tolerance=-0.1)


class TestCalibration:
    def test_slower_machine_lowers_the_floor(self, tmp_path):
        # current machine scores half the baseline machine: a 40% drop in
        # raw throughput is only 80% of the *calibrated* baseline → passes
        base = result_file(
            tmp_path, "b.json", [("x", {}, 100_000.0)], hardware_score=2.0
        )
        cur = result_file(tmp_path, "c.json", [("x", {}, 60_000.0)], hardware_score=1.0)
        ok, findings, factor = gate.check(base, cur)
        assert factor == pytest.approx(0.5)
        assert ok
        # ... and --no-calibrate keeps the strict comparison
        ok, _, factor = gate.check(base, cur, calibrate=False)
        assert factor == 1.0
        assert not ok

    def test_calibration_cannot_waive_a_real_regression(self, tmp_path):
        """Even on a (claimed) slower machine, a drop beyond the calibrated
        floor still fails."""
        base = result_file(
            tmp_path, "b.json", [("x", {}, 100_000.0)], hardware_score=2.0
        )
        cur = result_file(tmp_path, "c.json", [("x", {}, 30_000.0)], hardware_score=1.0)
        ok, findings, _ = gate.check(base, cur)
        assert not ok

    def test_factor_is_clamped(self):
        lo, hi = gate.CALIBRATION_CLAMP
        assert (
            gate.calibration_factor(
                {"hardware_score": 100.0}, {"hardware_score": 0.001}
            )
            == lo
        )
        assert (
            gate.calibration_factor(
                {"hardware_score": 0.001}, {"hardware_score": 100.0}
            )
            == hi
        )

    def test_missing_score_means_no_calibration(self):
        assert gate.calibration_factor({}, {"hardware_score": 2.0}) == 1.0
        assert gate.calibration_factor({"hardware_score": 2.0}, {}) == 1.0


class TestCLI:
    def test_exit_codes(self, tmp_path, capsys):
        base = result_file(tmp_path, "base.json", [("x", {}, 100_000.0)])
        good = result_file(tmp_path, "good.json", [("x", {}, 99_000.0)])
        bad = result_file(tmp_path, "bad.json", [("x", {}, 80_000.0)])
        assert gate.main([base, good]) == 0
        assert gate.main([base, bad]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "below floor" in out

    def test_tolerance_flag(self, tmp_path):
        base = result_file(tmp_path, "base.json", [("x", {}, 100_000.0)])
        bad = result_file(tmp_path, "bad.json", [("x", {}, 80_000.0)])
        assert gate.main([base, bad, "--tolerance", "0.25"]) == 0


class TestSeededBaseline:
    def test_baseline_file_is_well_formed(self):
        """The committed baseline must parse, carry calibration metadata,
        and hold throughput rows the gate can compare against."""
        rows, meta = gate.load_results(str(BASELINE))
        assert rows, "baseline has no result rows"
        assert meta.get("hardware_score"), "baseline lacks hardware_score"
        assert meta.get("git_sha") is not None
        for (name, _), row in rows.items():
            assert name.startswith("sustained/")
            assert row["events_per_sec"] > 0

    def test_baseline_passes_against_itself(self):
        ok, findings, factor = gate.check(str(BASELINE), str(BASELINE))
        assert ok and factor == 1.0
        assert all(f["status"] == "pass" for f in findings)
