"""Tests for the multi-tenant streaming query service (`repro.serve`).

The acceptance property is *tenant isolation under multiplexing*: for every
tenant of a packed service, the output collected through the service must be
byte-identical to running that tenant's query alone in a standalone
:class:`StreamingSession` — for both scheduler policies, with 20 mixed
applications sharing one 4-worker engine.
"""

import pytest

from repro.apps import get_application
from repro.core.runtime.engine import TiltEngine
from repro.datagen.sources import GeneratorSource, sources_for_streams
from repro.datagen import stock_price_stream
from repro.errors import AdmissionError, ExecutionError, QueryBuildError
from repro.metrics.fleet import aggregate_fleet, jain_fairness_index
from repro.serve import (
    DeficitFairPolicy,
    QueryService,
    RoundRobinPolicy,
    TickScheduler,
    make_policy,
)

#: 20 heterogeneous tenants: every application in the suite, cycled
TENANT_APPS = [
    "trading", "rsi", "normalize", "impute", "resample", "pantom",
    "vibration", "frauddet", "ysb", "select", "where", "wsum", "join",
    "trading", "ysb", "normalize", "frauddet", "rsi", "wsum", "impute",
]
N_EVENTS = 500


class TestMultiTenantEquivalence:
    @pytest.mark.parametrize("policy", ["round_robin", "fair"])
    def test_twenty_mixed_tenants_match_standalone_sessions(self, policy):
        """20 mixed-app tenants on 4 workers: each tenant's service output
        is byte-identical to a standalone StreamingSession over the same
        query and data."""
        engine = TiltEngine(workers=4)
        service = QueryService(engine, policy=policy)
        programs = {app: get_application(app).program() for app in set(TENANT_APPS)}
        datasets = {}
        for i, app in enumerate(TENANT_APPS):
            streams = get_application(app).streams(N_EVENTS, seed=i)
            datasets[f"{app}#{i}"] = (app, streams)
            service.submit(
                programs[app],
                name=f"{app}#{i}",
                sources=sources_for_streams(streams, events_per_poll=123 + 7 * (i % 5)),
            )
        assert len(service.tenants()) == 20
        service.run_until_idle()
        assert service.active_tenants() == []

        for name, (app, streams) in datasets.items():
            standalone = engine.open_session(
                programs[app], sources_for_streams(streams, events_per_poll=211)
            )
            standalone.run_to_exhaustion()
            assert service.result(name).output == standalone.result().output, name

        stats = service.stats()
        assert stats.policy == policy
        assert stats.fleet.tenants == 20
        assert stats.fleet.input_events == sum(
            sum(len(s) for s in streams.values()) for _, streams in datasets.values()
        )
        service.close()
        engine.close()


class TestServiceLifecycle:
    def _replay_tenant(self, service, app_name, name, *, seed=0, **kwargs):
        app = get_application(app_name)
        streams = app.streams(400, seed=seed)
        service.submit(
            app.program(),
            name=name,
            sources=sources_for_streams(streams, events_per_poll=90),
            **kwargs,
        )
        return streams

    def test_push_mode_ingest_and_results(self):
        app = get_application("trading")
        streams = app.streams(600, seed=1)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        service = QueryService(engine)
        service.submit(app.program(), name="t")
        events = streams["stock"].events
        collected = []
        for i in range(0, len(events), 150):
            assert service.ingest("t", events[i : i + 150]) == min(150, len(events) - i)
            service.step()
            collected.extend(service.results("t"))
        service.close_input("t")
        service.run_until_idle()
        collected.extend(service.results("t"))
        assert service.results("t") == []  # drained
        assert all(r.emitted for r in collected)
        assert service.result("t").output == batch.output
        service.close()
        engine.close()

    def test_multi_stream_push_tenant_needs_stream_name(self):
        service = QueryService(workers=1)
        app = get_application("join")  # two input streams: left, right
        service.submit(app.program(), name="j")
        streams = app.streams(50, seed=2)
        with pytest.raises(QueryBuildError):
            service.ingest("j", streams["left"].events)  # ambiguous
        with pytest.raises(QueryBuildError):
            service.ingest("j", streams["left"].events, stream="middle")
        for n in ("left", "right"):
            assert service.ingest("j", streams[n].events, stream=n)
        service.close()

    def test_cancel_stops_scheduling(self):
        service = QueryService(workers=1)
        feed = GeneratorSource(
            lambda i: stock_price_stream(500, seed=i), name="stock", events_per_poll=250
        )
        app = get_application("trading")
        service.submit(app.program(), name="unbounded", sources=[feed], retain_output=False)
        ran = service.run_until_idle(max_ticks=5)
        assert ran == 5  # unbounded tenant stays ready
        assert service.cancel("unbounded")
        assert not service.cancel("unbounded")  # already cancelled
        assert service.run_until_idle() == 0
        assert service.stats().tenants["unbounded"]["state"] == "cancelled"
        service.close()
        with pytest.raises(ExecutionError):
            service.submit(app.program())

    def test_finished_tenants_leave_the_ready_set(self):
        service = QueryService(workers=1)
        self._replay_tenant(service, "trading", "a")
        service.run_until_idle()
        stats = service.stats()
        assert stats.tenants["a"]["state"] == "finished"
        assert service.run_until_idle() == 0
        service.close()

    def test_failing_tenant_is_isolated(self):
        """A tenant whose data blows up mid-tick must be marked failed —
        not crash the scheduling loop or stall the other tenants."""
        from repro.core.runtime.stream import Event

        service = QueryService(workers=1)
        app = get_application("trading")
        streams = self._replay_tenant(service, "trading", "healthy", seed=8)
        service.submit(app.program(), name="broken")
        # start-ordered but overlapping: passes push-time validation, then
        # raises OverlappingEventsError inside the tick
        service.ingest("broken", [Event(0.0, 10.0, 1.0), Event(5.0, 15.0, 2.0)])
        service.run_until_idle()
        stats = service.stats()
        assert stats.tenants["broken"]["state"] == "failed"
        assert "Overlapping" in stats.tenants["broken"]["error"]
        assert stats.tenants["healthy"]["state"] == "finished"
        engine = TiltEngine(workers=1)
        assert service.result("healthy").output == engine.run(app.program(), streams).output
        engine.close()
        service.close()

    def test_pull_fed_queue_source_wakes_on_push(self):
        """A QueuedSource passed as a *pull* source must keep the tenant
        schedulable when events are pushed into it directly."""
        from repro.datagen.sources import QueuedSource

        app = get_application("trading")
        streams = app.streams(300, seed=9)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        service = QueryService(engine)
        src = QueuedSource("stock", capacity=1024)
        service.submit(app.program(), name="t", sources=[src])
        assert service.run_until_idle(max_ticks=10) <= 10  # idles, no spin
        events = streams["stock"].events
        src.push(events[:150])
        assert service.run_until_idle(max_ticks=50) > 0  # woke on depth
        src.push(events[150:])
        src.close()
        service.run_until_idle()
        assert service.result("t").output == batch.output
        service.close()
        engine.close()

    def test_poke_marks_idle_tenant_ready(self):
        """Custom pull sources without a depth signal re-arm via poke()."""

        class FlakySource:
            name = "stock"
            finite = False
            horizon = -float("inf")
            exhausted = False
            batches = []

            def poll(self, max_events=None):
                return self.batches.pop(0) if self.batches else []

        app = get_application("trading")
        service = QueryService(workers=1)
        src = FlakySource()
        service.submit(app.program(), name="t", sources=[src], retain_output=False)
        service.run_until_idle(max_ticks=20)
        assert service.run_until_idle(max_ticks=5) == 0  # idled
        from repro.core.runtime.stream import Event

        src.batches.append([Event(0.0, 1.0, 1.0)])
        src.horizon = 1.0
        service.poke("t")
        assert service.run_until_idle(max_ticks=5) > 0
        service.close()

    def test_unknown_tenant_rejected(self):
        service = QueryService(workers=1)
        with pytest.raises(QueryBuildError):
            service.results("ghost")
        with pytest.raises(QueryBuildError):
            service.ingest("ghost", [])
        service.close()

    def test_background_thread_serves_push_tenant(self):
        app = get_application("trading")
        streams = app.streams(500, seed=3)
        engine = TiltEngine(workers=2)
        batch = engine.run(app.program(), streams)
        service = QueryService(engine, policy="fair")
        service.submit(app.program(), name="bg")
        service.start()
        try:
            events = streams["stock"].events
            for i in range(0, len(events), 100):
                service.ingest("bg", events[i : i + 100], timeout=5.0)
            service.close_input("bg")
            import time as _time

            deadline = _time.monotonic() + 10.0
            while service.active_tenants() and _time.monotonic() < deadline:
                _time.sleep(0.005)
            assert service.active_tenants() == []
        finally:
            service.stop()
        assert service.result("bg").output == batch.output
        service.close()
        engine.close()


class TestAdmissionControl:
    def test_tenant_limit(self):
        service = QueryService(workers=1, max_tenants=2)
        self_app = get_application("trading")
        service.submit(self_app.program(), name="a")
        service.submit(self_app.program(), name="b")
        with pytest.raises(AdmissionError):
            service.submit(self_app.program(), name="c")
        assert service.stats().rejected_tenants == 1
        # finishing/cancelling a tenant frees the slot
        service.cancel("a")
        service.submit(self_app.program(), name="c")
        service.close()

    def test_shed_policy_drops_and_counts_overflow(self):
        service = QueryService(workers=1, max_pending_events=100, overload="shed")
        app = get_application("trading")
        events = app.streams(300, seed=4)["stock"].events
        service.submit(app.program(), name="t")
        accepted = service.ingest("t", events)
        assert accepted == 100  # queue capacity
        stats = service.stats()
        assert stats.tenants["t"]["shed_events"] == 200.0
        assert stats.fleet.shed_events == 200
        assert stats.fleet.queue_depth == 100
        service.close()

    def test_cancel_releases_blocked_producer(self):
        """A producer blocked in backpressured ingest must be woken with
        QueueClosedError when its tenant is cancelled — not hang forever
        on a queue nobody will drain."""
        import threading

        from repro.errors import QueueClosedError

        service = QueryService(workers=1, max_pending_events=20, overload="block")
        app = get_application("trading")
        events = app.streams(100, seed=12)["stock"].events
        service.submit(app.program(), name="t")
        outcome = {}

        def producer():
            try:
                service.ingest("t", events)  # 100 into 20 slots: blocks
            except QueueClosedError:
                outcome["released"] = True

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        import time

        time.sleep(0.05)
        assert thread.is_alive()
        service.cancel("t")
        thread.join(timeout=2.0)
        assert not thread.is_alive() and outcome.get("released")
        service.close()

    def test_block_policy_times_out_without_shedding(self):
        service = QueryService(
            workers=1, max_pending_events=50, overload="block", block_timeout=0.05
        )
        app = get_application("trading")
        events = app.streams(200, seed=5)["stock"].events
        service.submit(app.program(), name="t")
        accepted = service.ingest("t", events)
        assert accepted == 50  # blocked until timeout, rest stays with caller
        assert service.stats().fleet.shed_events == 0
        # draining via a tick makes room for a retry of the remainder
        service.step()
        assert service.ingest("t", events[accepted:], timeout=0.05) > 0
        service.close()


class TestSchedulerPolicies:
    class FakeTenant:
        def __init__(self, index, weight=1.0, deadline=None):
            self.index = index
            self.weight = weight
            self.vtime = 0.0
            self.cost_ewma = None
            self.deadline_seconds = deadline
            self.last_emit_wall = 0.0
            self.last_service_wall = 0.0

    def test_round_robin_cycles_in_admission_order(self):
        policy = RoundRobinPolicy()
        tenants = [self.FakeTenant(i) for i in range(3)]
        order = [policy.select(tenants).index for _ in range(7)]
        assert order == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_skips_unready(self):
        policy = RoundRobinPolicy()
        a, b, c = (self.FakeTenant(i) for i in range(3))
        assert policy.select([a, b, c]) is a
        assert policy.select([a, c]) is c  # b not ready: wraps past it
        assert policy.select([a, b, c]) is a

    def test_fair_share_schedules_heavy_tenant_less(self):
        """A tenant with 10x tick cost should receive ~1/10th the turns of
        each light tenant once costs are learned."""
        policy = DeficitFairPolicy()
        light = [self.FakeTenant(0), self.FakeTenant(1)]
        heavy = self.FakeTenant(2)
        tenants = light + [heavy]
        for t in tenants:
            policy.admit(t)
        turns = {t.index: 0 for t in tenants}
        for _ in range(200):
            t = policy.select(tenants)
            turns[t.index] += 1
            policy.record(t, 0.010 if t is heavy else 0.001)
        assert turns[2] < turns[0] / 3
        assert turns[2] < turns[1] / 3
        # weighted busy time is nearly equal: fairness of the shares
        busy = {0: turns[0] * 0.001, 1: turns[1] * 0.001, 2: turns[2] * 0.010}
        assert jain_fairness_index(list(busy.values())) > 0.95

    def test_fair_share_weight_buys_share(self):
        policy = DeficitFairPolicy()
        plain = self.FakeTenant(0, weight=1.0)
        vip = self.FakeTenant(1, weight=3.0)
        for t in (plain, vip):
            policy.admit(t)
        turns = {0: 0, 1: 0}
        for _ in range(200):
            t = policy.select([plain, vip])
            turns[t.index] += 1
            policy.record(t, 0.001)
        assert turns[1] > 2 * turns[0]

    def test_deadline_escalation_bypasses_policy(self):
        scheduler = TickScheduler(RoundRobinPolicy())
        normal = self.FakeTenant(0)
        urgent = self.FakeTenant(1, deadline=1.0)
        # at t=0.5 nothing is overdue: round-robin picks tenant 0
        assert scheduler.select([normal, urgent], now=0.5) is normal
        # at t=2.0 the urgent tenant is 1s past its deadline
        assert scheduler.select([normal, urgent], now=2.0) is urgent
        assert scheduler.escalations == 1

    def test_escalation_resets_on_service_not_only_emit(self):
        """A deadline tenant that is serviced but cannot emit must not be
        re-escalated on every select — that would starve the fleet."""
        scheduler = TickScheduler(RoundRobinPolicy())
        normal = self.FakeTenant(0)
        urgent = self.FakeTenant(1, deadline=1.0)
        assert scheduler.select([normal, urgent], now=5.0) is urgent
        # the service records the (non-emitting) tick it just received
        urgent.last_service_wall = 5.0
        # immediately after being serviced it is no longer overdue: the
        # policy takes over again
        assert scheduler.select([normal, urgent], now=5.1) is normal
        # ... until a full deadline window passes without service
        assert scheduler.select([normal, urgent], now=6.5) is urgent
        assert scheduler.escalations == 2

    def test_make_policy_names(self):
        assert make_policy("fair").name == "fair"
        assert make_policy("round_robin").name == "round_robin"
        with pytest.raises(QueryBuildError):
            make_policy("lifo")


class TestFleetMetrics:
    def test_jain_index_bounds(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            jain_fairness_index([-1.0])

    def test_aggregate_fleet_merges_sessions(self):
        from repro.metrics.streaming import SessionMetrics

        a, b = SessionMetrics(), SessionMetrics()
        a.record_tick(input_events=100, output_snapshots=10, seconds=0.010)
        b.record_tick(input_events=300, output_snapshots=30, seconds=0.030)
        snap = aggregate_fleet(
            {"a": a, "b": b},
            active=["a"],
            queue_depths={"a": 5, "b": 7},
            shed_events={"a": 0, "b": 2},
        )
        assert snap.tenants == 2 and snap.active_tenants == 1
        assert snap.input_events == 400
        assert snap.events_per_second == pytest.approx(400 / 0.040)
        assert snap.queue_depth == 12 and snap.shed_events == 2
        assert snap.tick_latency_p50 == pytest.approx(0.020)
        assert 0.0 < snap.fairness <= 1.0
        summary = snap.summary()
        assert summary["tenants"] == 2.0
        assert "fairness" in snap.format() or "fairness" in summary

    def test_service_stats_summary_round_trips_to_json(self):
        import json

        service = QueryService(workers=1)
        app = get_application("trading")
        streams = app.streams(200, seed=6)
        service.submit(
            app.program(),
            name="t",
            sources=sources_for_streams(streams, events_per_poll=60),
        )
        service.run_until_idle()
        stats = service.stats()
        payload = json.dumps({"service": stats.summary(), "tenants": stats.tenants})
        assert "events_per_second" in payload
        assert stats.fleet.input_events == 200
        service.close()


class TestSLOIntegration:
    class FakeTenant(TestSchedulerPolicies.FakeTenant):
        def __init__(self, index, name=None, **kw):
            super().__init__(index, **kw)
            self.name = name or f"t{index}"

    def test_urgent_tenant_escalates_past_policy(self):
        scheduler = TickScheduler(RoundRobinPolicy())
        normal = self.FakeTenant(0)
        burning = self.FakeTenant(1)
        # without urgency round-robin starts at tenant 0
        assert scheduler.select([normal, burning], now=1.0) is normal
        # SLO monitor flags tenant 1: it jumps the policy
        assert scheduler.select([normal, burning], now=1.0, urgent={"t1"}) is burning
        assert scheduler.escalations == 1
        assert scheduler.slo_escalations == 1

    def test_overdue_deadline_outranks_urgent(self):
        """An SLO-urgent tenant escalates at urgency 0, so a genuinely
        overdue hard deadline still wins the tie-break."""
        scheduler = TickScheduler(RoundRobinPolicy())
        overdue = self.FakeTenant(0, deadline=1.0)
        burning = self.FakeTenant(1)
        choice = scheduler.select([overdue, burning], now=5.0, urgent={"t1"})
        assert choice is overdue
        assert scheduler.escalations == 1
        assert scheduler.slo_escalations == 0  # deadline, not SLO, won

    def test_urgent_names_not_in_ready_are_ignored(self):
        scheduler = TickScheduler(RoundRobinPolicy())
        a, b = self.FakeTenant(0), self.FakeTenant(1)
        assert scheduler.select([a, b], now=1.0, urgent={"elsewhere"}) is a
        assert scheduler.escalations == 0

    def test_stats_slo_absent_without_spec(self):
        with QueryService(workers=1) as service:
            assert service.stats().slo is None
            assert service.slo_monitor is None
            assert service.telemetry is None

    def test_stats_slo_present_and_verdict_formats(self):
        with QueryService(workers=1, slo=True) as service:
            app = get_application("trading")
            streams = app.streams(200, seed=9)
            service.submit(
                app.program(),
                name="t",
                sources=sources_for_streams(streams, events_per_poll=60),
            )
            service.run_until_idle()
            stats = service.stats()
            assert stats.slo is not None
            assert stats.slo.verdict == "healthy"
            assert stats.summary()["slo_verdict"] == "healthy"
            assert "[healthy]" in stats.format()

    def test_failed_tenant_breaches_until_cancelled(self):
        from repro.core.runtime.stream import Event

        with QueryService(workers=1, slo=True) as service:
            app = get_application("trading")
            service.submit(app.program(), name="bad")
            service.ingest("bad", [Event(0.0, 10.0, 1.0), Event(5.0, 15.0, 2.0)])
            service.run_until_idle(max_ticks=5)
            status = service.stats().slo
            assert status.verdict == "degraded"
            assert status.failed_tenants == ["bad"]
            # the operator acknowledges the failure: breach state clears
            service.slo_monitor.forget("bad")
            assert service.stats().slo.verdict == "healthy"

    def test_slo_escalations_reported_in_summary(self):
        with QueryService(workers=1, slo=True) as service:
            service.run_until_idle()
            summary = service.stats().summary()
            assert "slo_escalations" in summary
