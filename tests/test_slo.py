"""Per-tenant SLOs: burn-rate evaluation, verdicts, breach events.

The properties that matter:

* **Multi-window discipline** — an objective breaches only when the burn
  rate exceeds the threshold in *both* the fast and the slow window, and
  recovers as soon as the fast window cools (a slow-window-only alert
  would stay red long after the problem stopped).
* **Verdict mapping** — shedding past budget is ``overloaded``;
  latency/freshness/error breaches are ``degraded``; otherwise
  ``healthy`` — and ``healthz()`` maps that to 200/503.
* **Failure permanence** — a failed tenant stays in breach regardless of
  elapsed time (windows forget; a dead tenant must not), until the
  monitor is told to forget it.

All tests drive an injected fake clock, so window arithmetic is exact.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    DEGRADED,
    ERRORS,
    FRESHNESS,
    HEALTHY,
    LATENCY,
    OVERLOADED,
    SHED,
    BurnWindow,
    SLOMonitor,
    SLOSpec,
)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def monitor(spec=None, **kw) -> "tuple[SLOMonitor, FakeClock]":
    clock = FakeClock()
    return SLOMonitor(spec, clock=clock, **kw), clock


# ---------------------------------------------------------------------- #
# spec
# ---------------------------------------------------------------------- #
class TestSpec:
    def test_resolve_forms(self):
        assert SLOSpec.resolve(True) == SLOSpec()
        spec = SLOSpec(tick_p99_seconds=0.5)
        assert SLOSpec.resolve(spec) is spec
        assert SLOSpec.resolve({"tick_p99_seconds": 0.5}).tick_p99_seconds == 0.5
        with pytest.raises(TypeError):
            SLOSpec.resolve(42)

    @pytest.mark.parametrize(
        "kw",
        [
            {"tick_p99_seconds": 0.0},
            {"emit_gap_seconds": -1.0},
            {"max_shed_ratio": 0.0},
            {"max_shed_ratio": 1.5},
            {"latency_objective": 1.0},
            {"freshness_objective": 0.0},
            {"fast_window_seconds": 300.0, "slow_window_seconds": 60.0},
            {"burn_rate_threshold": 0.0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SLOSpec(**kw)

    def test_to_dict_round_trips(self):
        spec = SLOSpec(emit_gap_seconds=2.0)
        assert SLOSpec(**spec.to_dict()) == spec


class TestBurnWindow:
    def test_prunes_past_horizon(self):
        w = BurnWindow(10.0)
        w.record(0.0, good=1, bad=1)
        w.record(5.0, good=0, bad=2)
        assert w.bad_ratio(5.0) == pytest.approx(3 / 4)
        # the t=0 entry ages out; only the t=5 one remains
        assert w.bad_ratio(10.5) == pytest.approx(1.0)
        assert w.totals(16.0) == (0, 0)
        assert w.bad_ratio(16.0) == 0.0  # empty window: no evidence, no burn


# ---------------------------------------------------------------------- #
# burn-rate evaluation
# ---------------------------------------------------------------------- #
class TestBurnRate:
    def test_slow_ticks_breach_latency_and_recover(self):
        mon, clock = monitor(SLOSpec(tick_p99_seconds=0.1, max_shed_ratio=None))
        mon.watch("t")
        # 50% bad ticks: burn = 0.5 / 0.01 budget = 50 >> threshold 6
        for i in range(20):
            mon.record_tick("t", seconds=0.2 if i % 2 else 0.01)
            clock.advance(0.1)
        status = mon.evaluate()
        assert status.verdict == DEGRADED
        assert status.tenants["t"][LATENCY].breached
        assert [b for b in status.recent_breaches if b.kind == "breach"]
        # fast window cools: the breach clears even though the slow window
        # still remembers the bad ticks
        clock.advance(61.0)
        for _ in range(10):
            mon.record_tick("t", seconds=0.01)
            clock.advance(0.1)
        status = mon.evaluate()
        assert status.verdict == HEALTHY
        assert not status.tenants["t"][LATENCY].breached
        kinds = [b.kind for b in status.recent_breaches]
        assert "recovery" in kinds

    def test_breach_requires_both_windows(self):
        """Bad ticks old enough to have left the fast window must not
        breach — that is the fast window's whole job."""
        mon, clock = monitor(SLOSpec(tick_p99_seconds=0.1, max_shed_ratio=None))
        mon.watch("t")
        for _ in range(20):
            mon.record_tick("t", seconds=0.5)  # all bad
        clock.advance(100.0)  # past fast (60s), inside slow (300s)
        for _ in range(50):
            mon.record_tick("t", seconds=0.01)  # fast window sees only good
        status = mon.evaluate()
        obj = status.tenants["t"][LATENCY]
        assert obj.burn_slow > mon.spec.burn_rate_threshold
        assert obj.burn_fast < mon.spec.burn_rate_threshold
        assert not obj.breached
        assert status.verdict == HEALTHY

    def test_shedding_past_budget_is_overloaded(self):
        mon, clock = monitor()
        mon.watch("t")
        mon.record_ingest("t", accepted=50, shed=50)  # ratio 0.5 / budget 0.05
        status = mon.evaluate()
        assert status.tenants["t"][SHED].breached
        assert status.verdict == OVERLOADED
        code, body = mon.healthz()
        assert code == 503
        assert body["status"] == OVERLOADED
        assert body["breached"] == {"t": [SHED]}

    def test_freshness_objective(self):
        spec = SLOSpec(tick_p99_seconds=None, emit_gap_seconds=0.1, max_shed_ratio=None)
        mon, clock = monitor(spec)
        mon.watch("t")
        for _ in range(10):
            mon.record_tick("t", seconds=0.01, emitted=True, emit_gap=1.0)
            clock.advance(0.1)
        status = mon.evaluate()
        assert status.tenants["t"][FRESHNESS].breached
        assert status.verdict == DEGRADED

    def test_unemitting_ticks_do_not_feed_freshness(self):
        spec = SLOSpec(tick_p99_seconds=None, emit_gap_seconds=0.1, max_shed_ratio=None)
        mon, _ = monitor(spec)
        mon.watch("t")
        mon.record_tick("t", seconds=0.01, emitted=False, emit_gap=None)
        status = mon.evaluate()
        assert status.tenants["t"][FRESHNESS].burn_fast == 0.0

    def test_per_tenant_spec_override(self):
        mon, _ = monitor(SLOSpec(tick_p99_seconds=10.0, max_shed_ratio=None))
        mon.watch("strict", SLOSpec(tick_p99_seconds=0.001, max_shed_ratio=None))
        mon.watch("lax")
        for _ in range(10):
            mon.record_tick("strict", seconds=0.01)
            mon.record_tick("lax", seconds=0.01)
        status = mon.evaluate()
        assert status.tenants["strict"][LATENCY].breached
        assert not status.tenants["lax"][LATENCY].breached


# ---------------------------------------------------------------------- #
# failure, urgency, lifecycle
# ---------------------------------------------------------------------- #
class TestFailureAndUrgency:
    def test_failure_is_permanent_until_forgotten(self):
        mon, clock = monitor()
        mon.watch("t")
        mon.record_failure("t", error="boom")
        status = mon.evaluate()
        assert status.verdict == DEGRADED
        assert status.failed_tenants == ["t"]
        assert status.tenants["t"][ERRORS].breached
        clock.advance(10_000.0)  # windows would long since have forgotten
        assert mon.evaluate().verdict == DEGRADED
        assert mon.healthz()[0] == 503
        mon.forget("t")
        assert mon.evaluate().verdict == HEALTHY
        assert mon.healthz()[0] == 200

    def test_record_failure_emits_one_breach(self):
        registry = MetricsRegistry()
        mon, _ = monitor(registry=registry)
        mon.record_failure("t", error="boom")
        mon.record_failure("t", error="boom again")  # idempotent
        breaches = [b for b in mon.breaches() if b.objective == ERRORS]
        assert len(breaches) == 1
        assert registry.counter("repro_slo_breaches_total").value == 1

    def test_urgent_covers_only_scheduling_fixable_breaches(self):
        """Latency is a compute problem and failed tenants are gone — only
        freshness and shedding breaches should escalate scheduling."""
        spec = SLOSpec(tick_p99_seconds=0.1, emit_gap_seconds=0.1, max_shed_ratio=0.05)
        mon, _ = monitor(spec)
        for name in ("slow", "stale", "shedding", "dead"):
            mon.watch(name)
        for _ in range(10):
            mon.record_tick("slow", seconds=1.0)  # latency breach
            mon.record_tick("stale", seconds=0.01, emit_gap=5.0)  # freshness
        mon.record_ingest("shedding", accepted=10, shed=90)
        mon.record_failure("dead")
        assert mon.urgent_tenants() == frozenset({"stale", "shedding"})

    def test_evaluate_empty_monitor_is_healthy(self):
        mon, _ = monitor()
        status = mon.evaluate()
        assert status.verdict == HEALTHY
        assert status.healthy
        assert status.to_dict()["tenants"] == {}

    def test_breach_counter_increments_on_transition_only(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        mon = SLOMonitor(
            SLOSpec(tick_p99_seconds=0.1, max_shed_ratio=None),
            clock=clock,
            registry=registry,
        )
        mon.watch("t")
        for _ in range(10):
            mon.record_tick("t", seconds=1.0)
        mon.evaluate()
        mon.evaluate()  # still breached: no second event
        counter = registry.counter("repro_slo_breaches_total")
        assert counter.value == 1

    def test_status_document_is_json_friendly(self):
        import json

        mon, _ = monitor()
        mon.watch("t")
        mon.record_tick("t", seconds=1.0)
        mon.record_failure("t", error="x")
        doc = mon.evaluate().to_dict()
        json.dumps(doc)  # must not raise
        assert doc["verdict"] == DEGRADED
        assert doc["failed_tenants"] == ["t"]
