"""Tests for the pull-based event sources and the bounded ingest queue."""

import threading
import time

import numpy as np
import pytest

from repro.core.runtime.stream import Event, EventStream
from repro.datagen import stock_price_stream
from repro.datagen.sources import (
    BoundedIngestQueue,
    GeneratorSource,
    QueuedSource,
    StreamReplaySource,
    ThrottledSource,
    sources_for_streams,
)
from repro.errors import QueryBuildError, QueueClosedError

INF = float("inf")


def sample_stream(n=10, period=1.0, name="s"):
    return EventStream.from_samples(np.arange(n, dtype=float), period=period, name=name)


class TestStreamReplaySource:
    def test_replays_in_order_with_rate(self):
        src = StreamReplaySource(sample_stream(10), events_per_poll=3)
        seen = []
        while not src.exhausted:
            chunk = src.poll()
            assert len(chunk) <= 3
            seen.extend(chunk)
        assert [e.start for e in seen] == [float(i) for i in range(10)]
        assert src.poll() == []

    def test_horizon_is_next_undelivered_start(self):
        src = StreamReplaySource(sample_stream(4), events_per_poll=2)
        assert src.horizon == 0.0
        src.poll()
        assert src.horizon == 2.0
        src.poll()
        assert src.horizon == INF and src.exhausted

    def test_max_events_caps_poll(self):
        src = StreamReplaySource(sample_stream(10), events_per_poll=8)
        assert len(src.poll(max_events=2)) == 2

    def test_invalid_rate(self):
        with pytest.raises(QueryBuildError):
            StreamReplaySource(sample_stream(3), events_per_poll=0)


class TestGeneratorSource:
    def test_chunks_are_stitched_contiguously(self):
        src = GeneratorSource(
            lambda i: sample_stream(5), name="g", events_per_poll=4
        )
        events = []
        for _ in range(5):
            events.extend(src.poll())
        starts = [e.start for e in events]
        # chunk k covers (5k, 5k+5]; stitched starts are 0,1,2,... forever
        assert starts == [float(i) for i in range(len(events))]
        assert not src.exhausted

    def test_seeded_chunks_are_deterministic(self):
        make = lambda i: stock_price_stream(100, seed=i)
        a = GeneratorSource(make, name="stock", events_per_poll=50)
        b = GeneratorSource(make, name="stock", events_per_poll=50)
        ea, eb = a.poll(), b.poll()
        assert [e.payload for e in ea] == [e.payload for e in eb]

    def test_horizon_always_finite(self):
        src = GeneratorSource(lambda i: sample_stream(5), name="g", events_per_poll=2)
        assert src.horizon == 0.0
        src.poll()
        assert src.horizon == 2.0

    def test_default_rate_releases_one_chunk(self):
        src = GeneratorSource(lambda i: sample_stream(5), name="g")
        assert len(src.poll()) == 5

    def test_empty_chunk_rejected(self):
        src = GeneratorSource(lambda i: EventStream([], name="g"), name="g")
        with pytest.raises(QueryBuildError):
            src.poll()


class TestThrottledSource:
    def test_caps_inner_rate(self):
        inner = StreamReplaySource(sample_stream(10))
        src = ThrottledSource(inner, events_per_poll=4)
        assert src.name == "s"
        assert len(src.poll()) == 4
        assert len(src.poll(max_events=1)) == 1
        assert src.horizon == 5.0
        assert not src.exhausted


class TestBoundedIngestQueue:
    def test_put_drain_roundtrip(self):
        q = BoundedIngestQueue(capacity=8)
        events = sample_stream(5).events
        assert q.put(events)
        assert len(q) == 5
        assert q.peek_start() == 0.0
        assert [e.start for e in q.drain(2)] == [0.0, 1.0]
        assert len(q.drain()) == 3
        assert q.peek_start() is None

    def test_put_blocks_until_drained(self):
        """Backpressure: a producer pushing past capacity blocks until the
        consumer drains."""
        q = BoundedIngestQueue(capacity=4)
        events = sample_stream(8).events
        done = threading.Event()

        def producer():
            q.put(events)  # 8 events into a 4-slot queue: must block
            done.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not done.is_set() and len(q) == 4
        q.drain()
        t.join(timeout=2.0)
        assert done.is_set()
        assert len(q) == 4  # the remaining half

    def test_put_timeout_when_full(self):
        q = BoundedIngestQueue(capacity=2)
        assert q.put(sample_stream(2).events) == 2
        assert q.put(sample_stream(2).events, timeout=0.05) == 0

    def test_put_reports_partial_delivery(self):
        """The timeout is a total deadline and put returns the enqueued
        prefix length, so producers can retry events[n:] safely."""
        q = BoundedIngestQueue(capacity=4)
        events = sample_stream(8).events
        start = time.monotonic()
        n = q.put(events, timeout=0.05)
        assert n == 4
        assert time.monotonic() - start < 1.0
        q.drain()
        assert q.put(events[n:], timeout=0.05) == 4

    def test_close_rejects_producers(self):
        """``put`` into a closed queue raises cleanly (no silent drop)."""
        q = BoundedIngestQueue(capacity=2)
        q.close()
        with pytest.raises(QueueClosedError) as exc_info:
            q.put(sample_stream(1).events)
        assert exc_info.value.enqueued == 0
        assert q.closed

    def test_close_releases_blocked_producer(self):
        """A producer blocked on a full queue must be woken by ``close`` and
        raise (no deadlock); the accepted prefix stays deliverable."""
        q = BoundedIngestQueue(capacity=3)
        outcome = {}

        def producer():
            try:
                q.put(sample_stream(8).events)  # 8 into 3 slots: blocks
            except QueueClosedError as exc:
                outcome["enqueued"] = exc.enqueued

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert len(q) == 3 and "enqueued" not in outcome
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert outcome["enqueued"] == 3
        # the accepted prefix is still drainable by the consumer
        assert [e.start for e in q.drain()] == [0.0, 1.0, 2.0]

    def test_push_after_close_raises(self):
        src = QueuedSource("s", capacity=4)
        src.push(sample_stream(2).events)
        src.close()
        with pytest.raises(QueueClosedError):
            src.push([Event(5.0, 6.0, 1.0)])
        # the pre-close events are still delivered
        assert [e.start for e in src.poll()] == [0.0, 1.0]
        assert src.exhausted


class TestQueuedSource:
    def test_push_poll_and_watermark(self):
        src = QueuedSource("s", capacity=16)
        events = sample_stream(4).events
        src.push(events[:2])
        assert src.horizon == 0.0  # first queued, undrained event
        assert [e.start for e in src.poll()] == [0.0, 1.0]
        assert src.horizon == 1.0  # last pushed start, once drained
        src.advance_to(10.0)
        assert src.horizon == 10.0
        src.push(events[2:])
        src.close()
        assert not src.exhausted  # still queued
        src.poll()
        assert src.exhausted and src.horizon == INF

    def test_rejects_out_of_order_push(self):
        src = QueuedSource("s")
        src.push([Event(5.0, 6.0, 1.0)])
        with pytest.raises(QueryBuildError):
            src.push([Event(1.0, 2.0, 1.0)])

    def test_concurrent_producers_never_corrupt_order(self):
        """push serializes validate+put: racing producers either land in
        order or fail cleanly — the queue never holds out-of-order events."""
        src = QueuedSource("s", capacity=1024)
        b1 = [Event(float(i), float(i) + 1, 1.0) for i in range(0, 50)]
        b2 = [Event(float(i), float(i) + 1, 2.0) for i in range(50, 100)]
        errors = []

        def pusher(batch):
            try:
                src.push(batch)
            except QueryBuildError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=pusher, args=(b,)) for b in (b1, b2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        drained = src.poll()
        starts = [e.start for e in drained]
        assert starts == sorted(starts)
        # either both batches landed in order, or the late-loser failed clean
        assert len(drained) + 50 * len(errors) == 100

    def test_throttled_source_forwards_depth(self):
        inner = QueuedSource("s", capacity=64)
        throttled = ThrottledSource(inner, 4)
        assert throttled.depth == 0
        inner.push(sample_stream(6).events)
        assert throttled.depth == 6
        assert len(throttled.poll()) == 4
        assert throttled.depth == 2
        # sources without a queue report zero rather than failing
        assert ThrottledSource(StreamReplaySource(sample_stream(3)), 2).depth == 0

    def test_partial_push_is_retryable(self):
        """A timed-out push must leave order/watermark state matching the
        delivered prefix so the producer can retry the remainder."""
        src = QueuedSource("s", capacity=3)
        events = sample_stream(6).events
        n = src.push(events, timeout=0.05)
        assert n == 3 and src.horizon == 0.0
        src.poll()
        assert src.push(events[n:], timeout=0.05) == 3  # no order error
        assert [e.start for e in src.poll()] == [3.0, 4.0, 5.0]


class TestFiniteness:
    def test_finite_flags(self):
        replay = StreamReplaySource(sample_stream(3))
        gen = GeneratorSource(lambda i: sample_stream(3), name="g")
        assert replay.finite and not gen.finite
        assert not ThrottledSource(gen, 2).finite
        assert ThrottledSource(replay, 2).finite
        assert QueuedSource("q").finite


class TestSourcesForStreams:
    def test_builds_named_replays(self):
        streams = {"a": sample_stream(3, name="x"), "b": sample_stream(4, name="y")}
        sources = sources_for_streams(streams, events_per_poll=2)
        assert sorted(s.name for s in sources) == ["a", "b"]
        assert all(isinstance(s, StreamReplaySource) for s in sources)
