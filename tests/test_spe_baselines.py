"""Tests for the baseline (event-centric) engines and their operators."""

import numpy as np
import pytest

from repro.core.frontend.query import LEFT, PAYLOAD, RIGHT, source
from repro.core.ir.nodes import Var, when
from repro.core.runtime.ssbuf import ssbuf_from_stream
from repro.core.runtime.stream import Event, EventStream
from repro.errors import UnsupportedOperationError
from repro.spe import GrizzlyEngine, LightSaberEngine, StreamBoxEngine, TrillEngine
from repro.spe.common.batches import ColumnarBatch, batches_from_stream, stream_from_batches
from repro.spe.common.expreval import eval_event_expr
from repro.spe.common.operators import (
    ChopOperator,
    MergeJoinOperator,
    NestedLoopJoinOperator,
    SelectOperator,
    ShiftOperator,
    WhereOperator,
    WindowAggregateOperator,
    coalesce_events,
)
from repro.spe.common.vectoreval import eval_expr_vectorized
from repro.windowing import COUNT, MEAN, SUM

E = PAYLOAD


# ---------------------------------------------------------------------- #
# shared infrastructure
# ---------------------------------------------------------------------- #
class TestBatches:
    def test_round_trip(self, regular_stream):
        batches = batches_from_stream(regular_stream, 32)
        assert len(batches) == 4
        assert sum(len(b) for b in batches) == 100
        back = stream_from_batches(batches)
        assert len(back) == 100
        assert back[0].value() == regular_stream[0].value()

    def test_empty_batch(self):
        batch = ColumnarBatch.empty()
        assert len(batch) == 0 and batch.to_events() == []

    def test_invalid_batch_size(self, regular_stream):
        with pytest.raises(ValueError):
            batches_from_stream(regular_stream, 0)


class TestExpressionEvaluation:
    def test_event_expr(self):
        value, ok = eval_event_expr(Var("%payload") * 2.0 + 1.0, {"%payload": (5.0, True)})
        assert ok and value == 11.0

    def test_vectorized_matches_scalar(self):
        expr = when((Var("%payload") % 2.0).eq(0.0), Var("%payload") * 3.0, 0.0)
        values = np.arange(10, dtype=float)
        vec, ok = eval_expr_vectorized(expr, {"%payload": (values, np.ones(10, dtype=bool))}, 10)
        for i, v in enumerate(values):
            sv, sk = eval_event_expr(expr, {"%payload": (float(v), True)})
            assert ok[i] == sk and vec[i] == pytest.approx(sv)


# ---------------------------------------------------------------------- #
# operators
# ---------------------------------------------------------------------- #
class TestOperators:
    def test_select_operator(self, regular_stream):
        out = SelectOperator(E + 100.0).process(regular_stream.events[:5])
        assert [e.value() for e in out] == [100.0, 101.0, 102.0, 103.0, 104.0]

    def test_where_operator(self, regular_stream):
        out = WhereOperator((E % 2.0).eq(0.0)).process(regular_stream.events[:6])
        assert [e.value() for e in out] == [0.0, 2.0, 4.0]

    def test_shift_operator(self):
        out = ShiftOperator(3.0).process([Event(0.0, 1.0, 7.0)])
        assert out[0].start == 3.0 and out[0].end == 4.0

    def test_chop_operator_splits_at_boundaries(self):
        out = ChopOperator(1.0).process([Event(0.5, 2.5, 9.0)])
        assert [(e.start, e.end) for e in out] == [(0.5, 1.0), (1.0, 2.0), (2.0, 2.5)]
        assert all(e.payload == 9.0 for e in out)

    def test_window_aggregate_operator(self, regular_stream):
        op = WindowAggregateOperator(10.0, 10.0, SUM)
        out = op.process(regular_stream.events) + op.flush()
        assert out[0].payload == sum(range(10))
        assert out[0].start == 0.0 and out[0].end == 10.0
        assert len(out) == 10

    def test_window_aggregate_with_element(self, regular_stream):
        op = WindowAggregateOperator(10.0, 10.0, SUM, element=E * E)
        out = op.process(regular_stream.events[:20]) + op.flush()
        assert out[0].payload == sum(i * i for i in range(10))

    def test_merge_join_matches_nested_loop(self):
        rng = np.random.default_rng(0)
        left = EventStream.from_samples(rng.uniform(0, 10, 50), period=1.0)
        right = EventStream.from_samples(rng.uniform(0, 10, 40), period=1.3)
        results = []
        for cls in (MergeJoinOperator, NestedLoopJoinOperator):
            op = cls(LEFT + RIGHT)
            out = op.process_left(left.events) + op.process_right(right.events)
            results.append(sorted((e.start, e.end, round(e.payload, 9)) for e in out))
        assert results[0] == results[1]

    def test_coalesce_events_fills_gaps(self):
        left = [Event(0.0, 2.0, 1.0), Event(5.0, 6.0, 2.0)]
        right = [Event(1.0, 7.0, 9.0)]
        out = coalesce_events(left, right)
        buf = ssbuf_from_stream(EventStream(out, check_order=False))
        assert buf.value_at(1.5) == (1.0, True)    # left wins where present
        assert buf.value_at(3.0) == (9.0, True)    # gap filled from right
        assert buf.value_at(5.5) == (2.0, True)
        assert buf.value_at(6.5) == (9.0, True)


# ---------------------------------------------------------------------- #
# engines
# ---------------------------------------------------------------------- #
def ysb_like_query():
    return source("values").where((E % 2.0).eq(0.0)).window(10, 10).count()


class TestEngines:
    def test_all_engines_agree_on_aggregation_query(self, regular_stream):
        query = ysb_like_query()
        streams = {"values": regular_stream}
        outputs = {}
        outputs["trill"] = TrillEngine(batch_size=16).run(query, streams)
        outputs["streambox"] = StreamBoxEngine(batch_size=16, workers=2).run(query, streams)
        outputs["grizzly"] = GrizzlyEngine(workers=2).run(query, streams)
        outputs["lightsaber"] = LightSaberEngine(workers=2).run(query, streams)
        reference = sorted((e.start, e.end, e.payload) for e in outputs["trill"])
        assert reference  # non-empty
        for name, stream in outputs.items():
            assert sorted((e.start, e.end, e.payload) for e in stream) == reference, name

    def test_trill_join_matches_tilt(self, random_walk_stream):
        from repro import TiltEngine

        query = (
            source("stock").window(5, 1).aggregate(MEAN)
            .join(source("stock").window(15, 1).aggregate(MEAN), LEFT - RIGHT)
            .where(E > 0)
        )
        streams = {"stock": random_walk_stream}
        trill_out = TrillEngine(batch_size=64).run(query, streams)
        tilt_out = TiltEngine(workers=2).run(query.to_program(), streams)
        grid = np.linspace(20.0, 290.0, 250)
        tb = ssbuf_from_stream(trill_out, on_overlap="last")
        bv, bk = tb.values_at(grid)
        tv, tk = tilt_out.output.values_at(grid)
        assert np.array_equal(tk, bk)
        assert np.allclose(tv[tk], bv[bk])

    def test_streambox_uses_nested_loop_join(self):
        assert StreamBoxEngine.join_operator_cls is NestedLoopJoinOperator
        assert TrillEngine.join_operator_cls is MergeJoinOperator

    def test_trill_partitioned_execution(self, regular_stream):
        query = source("values").select(E + 1.0)
        partitions = [
            {"values": regular_stream.slice_time(0.0, 50.0)},
            {"values": regular_stream.slice_time(50.0, 100.0)},
        ]
        out = TrillEngine(workers=2).run_partitioned(query, partitions)
        assert len(out) == 100

    def test_missing_stream_raises(self):
        with pytest.raises(Exception):
            TrillEngine().run(source("ghost").select(E + 1), {})

    def test_grizzly_rejects_join(self, regular_stream):
        query = source("values").join(source("values").shift(1.0), LEFT - RIGHT)
        with pytest.raises(UnsupportedOperationError):
            GrizzlyEngine().run(query, {"values": regular_stream})

    def test_lightsaber_rejects_join_and_shift(self, regular_stream):
        join_query = source("values").join(source("values").shift(1.0), LEFT - RIGHT)
        with pytest.raises(UnsupportedOperationError):
            LightSaberEngine().run(join_query, {"values": regular_stream})
        with pytest.raises(UnsupportedOperationError):
            LightSaberEngine().run(source("values").shift(1.0), {"values": regular_stream})

    def test_grizzly_select_where(self, regular_stream):
        out = GrizzlyEngine().run(source("values").select(E * 2).where(E > 100.0),
                                  {"values": regular_stream})
        assert all(e.value() > 100.0 for e in out)
        assert len(out) == 49

    def test_lightsaber_sliding_window(self, regular_stream):
        out = LightSaberEngine(workers=2).run(source("values").sum(10, 5), {"values": regular_stream})
        trill = TrillEngine().run(source("values").sum(10, 5), {"values": regular_stream})
        assert sorted((e.start, e.end, e.payload) for e in out) == sorted(
            (e.start, e.end, e.payload) for e in trill
        )

    def test_engine_names(self):
        assert TrillEngine().name == "trill"
        assert StreamBoxEngine().name == "streambox"
        assert GrizzlyEngine().name == "grizzly"
        assert LightSaberEngine().name == "lightsaber"

    def test_invalid_batch_size(self):
        with pytest.raises(Exception):
            TrillEngine(batch_size=0)
