"""Unit and property tests for snapshot buffers (SSBuf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime.ssbuf import SSBuf, Snapshot, ssbuf_from_stream, ssbufs_from_stream
from repro.core.runtime.stream import Event, EventStream
from repro.errors import OverlappingEventsError, QueryBuildError


class TestConstruction:
    def test_from_events_matches_paper_figure5(self, simple_events):
        buf = SSBuf.from_events(simple_events)
        # (10, a) (16, φ) (23, b) (30, φ) (35, c) with start_time 5
        assert buf.start_time == 5.0
        assert list(buf.times) == [10.0, 16.0, 23.0, 30.0, 35.0]
        assert list(buf.valid) == [True, False, True, False, True]
        assert buf.values[0] == 1.0 and buf.values[2] == 2.0 and buf.values[4] == 3.0

    def test_from_events_with_explicit_start(self, simple_events):
        buf = SSBuf.from_events(simple_events, start_time=0.0)
        # an extra leading φ snapshot covers (0, 5]
        assert buf.start_time == 0.0
        assert buf.times[0] == 5.0 and not buf.valid[0]

    def test_empty(self):
        buf = SSBuf.empty(3.0)
        assert len(buf) == 0
        assert buf.start_time == 3.0
        assert buf.end_time == 3.0
        assert buf.value_at(4.0) == (0.0, False)

    def test_constant(self):
        buf = SSBuf.constant(7.0, 0.0, 10.0)
        assert buf.value_at(5.0) == (7.0, True)
        assert buf.value_at(10.0) == (7.0, True)
        assert buf.value_at(10.5) == (0.0, False)

    def test_non_increasing_times_rejected(self):
        with pytest.raises(QueryBuildError):
            SSBuf([1.0, 1.0], [0.0, 1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(QueryBuildError):
            SSBuf([1.0, 2.0], [0.0])

    def test_overlapping_events_error_policy(self):
        events = [Event(0.0, 5.0, 1.0), Event(3.0, 8.0, 2.0)]
        with pytest.raises(OverlappingEventsError):
            SSBuf.from_events(events)

    def test_overlapping_events_last_wins(self):
        events = [Event(0.0, 5.0, 1.0), Event(3.0, 8.0, 2.0)]
        buf = SSBuf.from_events(events, on_overlap="last")
        assert buf.value_at(2.0) == (1.0, True)
        assert buf.value_at(4.0) == (2.0, True)   # later-starting event wins
        assert buf.value_at(7.0) == (2.0, True)

    def test_repr_shows_phi(self, simple_buf):
        text = repr(simple_buf)
        assert "φ" in text


class TestPointQueries:
    def test_value_inside_and_outside(self, simple_buf):
        assert simple_buf.value_at(7.0) == (1.0, True)
        assert simple_buf.value_at(10.0) == (1.0, True)     # inclusive right edge
        assert simple_buf.value_at(10.5) == (0.0, False)    # gap
        assert simple_buf.value_at(5.0) == (0.0, False)     # at/before start
        assert simple_buf.value_at(50.0) == (0.0, False)    # past the end

    def test_values_at_vectorized_matches_scalar(self, simple_buf):
        ts = np.linspace(0.0, 40.0, 101)
        vv, kk = simple_buf.values_at(ts)
        for i, t in enumerate(ts):
            v, k = simple_buf.value_at(float(t))
            assert kk[i] == k
            if k:
                assert vv[i] == v

    def test_change_times_in(self, simple_buf):
        assert list(simple_buf.change_times_in(10.0, 30.0)) == [16.0, 23.0, 30.0]
        assert list(simple_buf.change_times_in(-10.0, 5.0)) == []


class TestTransformations:
    def test_slice_preserves_values(self, simple_buf):
        sliced = simple_buf.slice(8.0, 32.0)
        assert sliced.start_time == 8.0
        grid = np.linspace(8.1, 32.0, 50)
        sv, sk = sliced.values_at(grid)
        fv, fk = simple_buf.values_at(grid)
        assert np.array_equal(sk, fk)
        assert np.allclose(sv[sk], fv[fk])

    def test_slice_clips_trailing_snapshot(self, simple_buf):
        sliced = simple_buf.slice(6.0, 9.0)
        assert sliced.end_time == 9.0
        assert sliced.value_at(8.5) == (1.0, True)

    def test_slice_empty_interval(self, simple_buf):
        assert len(simple_buf.slice(10.0, 10.0)) == 0
        assert len(simple_buf.slice(100.0, 200.0)) == 0

    def test_shift(self, simple_buf):
        shifted = simple_buf.shift(5.0)
        assert shifted.value_at(12.0) == simple_buf.value_at(7.0)
        assert shifted.value_at(12.0) == (1.0, True)

    def test_compact_merges_equal_adjacent(self):
        buf = SSBuf([1.0, 2.0, 3.0, 4.0], [5.0, 5.0, 6.0, 6.0], [True, True, True, True], 0.0)
        compacted = buf.compact()
        assert len(compacted) == 2
        assert compacted.value_at(1.5) == (5.0, True)
        assert compacted.value_at(3.5) == (6.0, True)

    def test_compact_merges_phi_runs(self):
        buf = SSBuf([1.0, 2.0, 3.0], [0.0, 0.0, 7.0], [False, False, True], 0.0)
        compacted = buf.compact()
        assert len(compacted) == 2

    def test_map_values(self, simple_buf):
        doubled = simple_buf.map_values(lambda v: v * 2)
        assert doubled.value_at(7.0) == (2.0, True)
        assert doubled.value_at(12.0) == (0.0, False)

    def test_to_events_round_trip(self, simple_events):
        buf = SSBuf.from_events(simple_events)
        events = buf.to_events()
        assert [(e.start, e.end, e.payload) for e in events] == [
            (5.0, 10.0, 1.0),
            (16.0, 23.0, 2.0),
            (30.0, 35.0, 3.0),
        ]

    def test_to_stream(self, simple_buf):
        stream = simple_buf.to_stream("back")
        assert stream.name == "back"
        assert len(stream) == 3


class TestCombination:
    def test_merged_change_times(self, simple_buf):
        other = SSBuf([12.0, 40.0], [1.0, 2.0], [True, True], 0.0)
        merged = SSBuf.merged_change_times([simple_buf, other], 0.0, 50.0)
        assert 12.0 in merged and 16.0 in merged and 40.0 in merged
        assert list(merged) == sorted(set(merged))

    def test_concat_ordered_pieces(self, regular_buf):
        a = regular_buf.slice(0.0, 40.0)
        b = regular_buf.slice(40.0, 100.0)
        rebuilt = SSBuf.concat([a, b])
        grid = np.linspace(1.0, 100.0, 200)
        rv, rk = rebuilt.values_at(grid)
        fv, fk = regular_buf.values_at(grid)
        assert np.array_equal(rk, fk)
        assert np.allclose(rv[rk], fv[fk])

    def test_concat_empty(self):
        assert len(SSBuf.concat([])) == 0


class TestStreamConversions:
    def test_ssbuf_from_scalar_stream(self, regular_stream):
        buf = ssbuf_from_stream(regular_stream)
        assert buf.num_valid() == 100

    def test_ssbufs_from_structured_stream(self):
        s = EventStream.from_arrays(
            [0, 1], [1, 2], [{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}], name="txn"
        )
        bufs = ssbufs_from_stream(s)
        assert set(bufs.keys()) == {"txn.a", "txn.b"}
        assert bufs["txn.b"].value_at(1.5) == (4.0, True)


# ---------------------------------------------------------------------- #
# property-based tests
# ---------------------------------------------------------------------- #
@st.composite
def disjoint_event_lists(draw):
    """In-order, non-overlapping event lists with gaps."""
    n = draw(st.integers(min_value=1, max_value=30))
    cursor = 0.0
    events = []
    for _ in range(n):
        gap = draw(st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
        length = draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        value = draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
        start = cursor + gap
        end = start + length
        events.append(Event(start, end, value))
        cursor = end
    return events


@given(disjoint_event_lists())
@settings(max_examples=50, deadline=None)
def test_property_event_round_trip(events):
    """events -> SSBuf -> events is the identity for disjoint events."""
    buf = SSBuf.from_events(events)
    back = buf.to_events(compact=False)
    assert len(back) == len(events)
    for original, restored in zip(events, back):
        assert restored.start == pytest.approx(original.start)
        assert restored.end == pytest.approx(original.end)
        assert restored.payload == pytest.approx(original.payload)


@given(disjoint_event_lists(), st.floats(min_value=0.0, max_value=200.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_property_value_at_matches_event_cover(events, t):
    """value_at agrees with a brute-force scan over the original events."""
    buf = SSBuf.from_events(events)
    value, valid = buf.value_at(t)
    covering = [e for e in events if e.start < t <= e.end]
    assert valid == bool(covering)
    if covering:
        assert value == pytest.approx(covering[0].payload)


@given(disjoint_event_lists(), st.floats(min_value=0.5, max_value=50.0), st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=50, deadline=None)
def test_property_slice_preserves_values(events, width, offset):
    """Slicing never changes the temporal object's value inside the slice."""
    buf = SSBuf.from_events(events)
    lo = buf.start_time + offset
    hi = lo + width
    sliced = buf.slice(lo, hi)
    grid = np.linspace(lo + 1e-6, hi, 23)
    sv, sk = sliced.values_at(grid)
    fv, fk = buf.values_at(grid)
    assert np.array_equal(sk, fk)
    assert np.allclose(sv[sk], fv[fk])
