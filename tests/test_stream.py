"""Unit tests for the event stream data model."""

import numpy as np
import pytest

from repro.core.runtime.stream import Event, EventStream, interleave
from repro.errors import QueryBuildError, StreamOrderError


class TestEvent:
    def test_basic_fields(self):
        e = Event(1.0, 2.0, 5.0)
        assert e.start == 1.0 and e.end == 2.0
        assert e.value() == 5.0
        assert e.duration == 1.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(QueryBuildError):
            Event(2.0, 2.0, 1.0)
        with pytest.raises(QueryBuildError):
            Event(3.0, 2.0, 1.0)

    def test_structured_payload_field_access(self):
        e = Event(0.0, 1.0, {"amount": 12.5, "user": 3.0})
        assert e.field("amount") == 12.5
        assert e.field("user") == 3.0

    def test_scalar_value_on_struct_raises(self):
        e = Event(0.0, 1.0, {"amount": 12.5})
        with pytest.raises(QueryBuildError):
            e.value()

    def test_field_on_scalar_raises(self):
        with pytest.raises(QueryBuildError):
            Event(0.0, 1.0, 3.0).field("x")


class TestEventStream:
    def test_from_arrays(self):
        s = EventStream.from_arrays([0, 1, 2], [1, 2, 3], [10.0, 11.0, 12.0])
        assert len(s) == 3
        assert s[1].value() == 11.0

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(QueryBuildError):
            EventStream.from_arrays([0, 1], [1], [1.0, 2.0])

    def test_from_samples_periods(self):
        s = EventStream.from_samples([1.0, 2.0, 3.0], period=0.5, start=10.0)
        assert s[0].start == 10.0 and s[0].end == 10.5
        assert s[2].start == 11.0 and s[2].end == 11.5

    def test_order_enforced(self):
        events = [Event(5.0, 6.0, 1.0), Event(1.0, 2.0, 2.0)]
        with pytest.raises(StreamOrderError):
            EventStream(events)

    def test_time_range(self, simple_stream):
        assert simple_stream.time_range() == (5.0, 35.0)

    def test_values_and_starts_ends(self, simple_stream):
        assert np.allclose(simple_stream.values(), [1.0, 2.0, 3.0])
        assert np.allclose(simple_stream.starts(), [5.0, 16.0, 30.0])
        assert np.allclose(simple_stream.ends(), [10.0, 23.0, 35.0])

    def test_structured_helpers(self):
        s = EventStream.from_arrays(
            [0, 1], [1, 2], [{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}]
        )
        assert s.is_structured
        assert s.fields() == ["a", "b"]
        proj = s.select_field("b")
        assert np.allclose(proj.values(), [2.0, 4.0])
        assert not proj.is_structured

    def test_filter(self, regular_stream):
        evens = regular_stream.filter(lambda e: e.value() % 2 == 0)
        assert len(evens) == 50

    def test_slice_time(self, simple_stream):
        sliced = simple_stream.slice_time(8.0, 20.0)
        assert [e.value() for e in sliced] == [1.0, 2.0]

    def test_partition_by(self):
        s = EventStream.from_arrays(
            [0, 1, 2, 3],
            [1, 2, 3, 4],
            [{"k": 0.0, "v": 1.0}, {"k": 1.0, "v": 2.0}, {"k": 0.0, "v": 3.0}, {"k": 1.0, "v": 4.0}],
        )
        parts = s.partition_by("k")
        assert set(parts.keys()) == {0.0, 1.0}
        assert len(parts[0.0]) == 2

    def test_concat_sorts(self):
        a = EventStream.from_samples([1.0], period=1.0, start=5.0)
        b = EventStream.from_samples([2.0], period=1.0, start=0.0)
        merged = a.concat(b)
        assert merged[0].value() == 2.0

    def test_interleave(self):
        a = EventStream.from_samples([1.0, 1.0], period=2.0, start=0.0)
        b = EventStream.from_samples([2.0], period=1.0, start=1.0)
        merged = interleave([a, b])
        assert len(merged) == 3
        starts = [e.start for e in merged]
        assert starts == sorted(starts)
