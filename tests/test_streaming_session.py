"""Tests for the continuous streaming session runtime.

The central property is *tick-concatenation equivalence*: feeding a dataset
through a :class:`StreamingSession` in micro-batch ticks must produce output
byte-identical (``SSBuf.__eq__``: same timestamps, values, validity mask and
start time) to one ``TiltEngine.run`` over the full input — across
applications, worker counts, tick sizes and ragged arrival patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_application
from repro.core.ir import IRBuilder
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.session import StreamingSession
from repro.core.runtime.ssbuf import SSBuf
from repro.core.runtime.stream import Event, EventStream
from repro.datagen.sources import StreamReplaySource, sources_for_streams
from repro.errors import ExecutionError, OverlappingEventsError, QueryBuildError
from repro.windowing import SUM

N_EVENTS = 2_500

#: ≥3 applications spanning scalar (trading, normalize) and structured
#: (ysb, frauddet) inputs, per the streaming-equivalence acceptance bar
EQUIVALENCE_APPS = ["ysb", "frauddet", "normalize", "trading"]


def run_session(engine, program, streams, tick_events, **kwargs):
    """Drive a session over replayed streams until exhaustion; return output."""
    sources = sources_for_streams(streams, events_per_poll=tick_events)
    session = engine.open_session(program, sources, **kwargs)
    session.run_to_exhaustion()
    return session


class TestStreamingEquivalence:
    @pytest.mark.parametrize("app_name", EQUIVALENCE_APPS)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_tick_concat_equals_batch(self, app_name, workers):
        app = get_application(app_name)
        streams = app.streams(N_EVENTS, seed=1)
        engine = TiltEngine(workers=workers)
        batch = engine.run(app.program(), streams)
        for tick_events in (171, 1024):
            session = run_session(engine, app.program(), streams, tick_events)
            assert session.result().output == batch.output
        engine.close()

    def test_single_giant_tick_equals_batch(self):
        app = get_application("trading")
        streams = app.streams(N_EVENTS, seed=2)
        engine = TiltEngine(workers=2)
        batch = engine.run(app.program(), streams)
        session = run_session(engine, app.program(), streams, None)
        assert session.result().output == batch.output
        engine.close()

    def test_lookahead_margin_query(self):
        """A future-looking window forces the watermark to trail the ingest
        horizon by the lookahead margin; output must still match batch."""
        b = IRBuilder()
        x = b.stream("x")
        b.define("fut", x.window(0, 5).reduce(SUM), precision=1.0)
        program = b.build(output="fut")
        rng = np.random.default_rng(3)
        stream = EventStream.from_samples(rng.uniform(0, 10, 1500), period=1.0, name="x")
        engine = TiltEngine(workers=2)
        batch = engine.run(program, {"x": stream})
        session = run_session(engine, program, {"x": stream}, 61)
        assert session.boundary.max_lookahead == 5.0
        assert session.result().output == batch.output
        engine.close()

    def test_interpreted_mode_session(self):
        app = get_application("wsum")
        streams = app.streams(800, seed=4)
        engine = TiltEngine(workers=1, mode="interpreted")
        batch = engine.run(app.program(), streams)
        session = run_session(engine, app.program(), streams, 97)
        assert session.result().output == batch.output

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=12))
    def test_ragged_tick_sizes(self, tick_sizes):
        """Property: any arrival pattern (ragged per-tick batch sizes)
        reproduces the batch output exactly."""
        app = get_application("trading")
        streams = app.streams(1200, seed=5)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        sources = sources_for_streams(streams)
        session = engine.open_session(app.program(), sources)
        i = 0
        while not session.exhausted:
            session.tick(max_events=tick_sizes[i % len(tick_sizes)])
            i += 1
        session.close()
        assert session.result().output == batch.output

    def test_push_mode_queued_source(self):
        """Producer pushes into a bounded queue; ticks drain it.  The pushed
        stream must still reproduce the batch output exactly."""
        from repro.datagen.sources import QueuedSource

        app = get_application("trading")
        streams = app.streams(800, seed=11)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams)
        src = QueuedSource("stock", capacity=1024)
        session = engine.open_session(app.program(), [src])
        events = streams["stock"].events
        for i in range(0, len(events), 200):
            src.push(events[i : i + 200])
            session.tick()
        src.close()
        session.close()
        assert session.result().output == batch.output

    def test_explicit_t_start(self):
        app = get_application("trading")
        streams = app.streams(1000, seed=6)
        engine = TiltEngine(workers=1)
        batch = engine.run(app.program(), streams, t_start=100.0)
        sources = sources_for_streams(streams, events_per_poll=173)
        session = engine.open_session(app.program(), sources, t_start=100.0)
        session.run_to_exhaustion()
        assert session.result().output == batch.output


class TestSessionLifecycle:
    def _session(self, tick_events=200, **kwargs):
        app = get_application("trading")
        streams = app.streams(1500, seed=7)
        engine = TiltEngine(workers=1)
        sources = sources_for_streams(streams, events_per_poll=tick_events)
        return engine.open_session(app.program(), sources, **kwargs), app, streams

    def test_watermark_monotone_and_deltas_disjoint(self):
        session, _, _ = self._session()
        prev_w = -float("inf")
        prev_end = None
        while not session.exhausted:
            r = session.tick()
            assert r.t_end >= r.t_start
            assert session.watermark == r.t_end >= prev_w
            prev_w = r.t_end
            if r.emitted and len(r.delta):
                if prev_end is not None:
                    assert r.delta.times[0] > prev_end
                prev_end = float(r.delta.times[-1])

    def test_carry_over_is_bounded(self):
        """Pruning must keep the retained input tail within the lookback
        margin plus one tick — not grow with total ingested volume."""
        session, app, _ = self._session(tick_events=100)
        session.tick()
        sizes = []
        while not session.exhausted:
            session.tick()
            sizes.append(session.retained_snapshots())
        # trading: 20s lookback over 1 Hz ticks -> ~20 retained snapshots;
        # anything near the full 1500-event history means pruning is broken
        assert max(sizes) < 200

    def test_tick_after_close_raises(self):
        session, _, _ = self._session()
        session.run_to_exhaustion()
        assert session.closed
        with pytest.raises(ExecutionError):
            session.tick()
        with pytest.raises(ExecutionError):
            session.close()

    def test_context_manager_closes(self):
        session, _, _ = self._session()
        with session as s:
            s.tick()
        assert session.closed

    def test_empty_tick_before_data(self):
        source = StreamReplaySource(
            EventStream([Event(10.0, 11.0, 1.0)], name="stock"), events_per_poll=1
        )
        engine = TiltEngine(workers=1)
        app = get_application("trading")
        session = engine.open_session(app.program(), [source])
        # first tick ingests one event; the watermark cannot advance past
        # the single event, so nothing can be emitted yet
        r = session.tick()
        assert not r.emitted and len(r.delta) == 0

    def test_metrics_record_ticks(self):
        session, _, _ = self._session()
        results = session.run_to_exhaustion()
        m = session.metrics
        assert m.ticks == len(results)
        assert m.input_events == 1500
        assert m.throughput > 0
        assert m.latency.p99 >= m.latency.p50 >= 0
        summary = m.summary()
        assert summary["input_events"] == 1500.0
        assert "M ev/s" in m.format()

    def test_out_of_order_arrival_rejected(self):
        engine = TiltEngine(workers=1)
        app = get_application("trading")
        events = [Event(5.0, 6.0, 1.0), Event(1.0, 2.0, 2.0)]
        source = StreamReplaySource(EventStream(events, name="stock", check_order=False))
        session = engine.open_session(app.program(), [source])
        with pytest.raises(OverlappingEventsError):
            session.tick()

    def test_result_requires_retained_output(self):
        session, _, _ = self._session(retain_output=False)
        session.run_to_exhaustion()
        with pytest.raises(ExecutionError):
            session.result()


class TestSessionWiring:
    def test_missing_input_source_rejected(self):
        engine = TiltEngine(workers=1)
        app = get_application("trading")
        with pytest.raises(QueryBuildError):
            engine.open_session(app.program(), [])
        bad = StreamReplaySource(EventStream([Event(0.0, 1.0, 1.0)], name="nonsense"))
        with pytest.raises(QueryBuildError):
            engine.open_session(app.program(), [bad])

    def test_duplicate_source_rejected(self):
        engine = TiltEngine(workers=1)
        app = get_application("trading")
        stream = EventStream([Event(0.0, 1.0, 1.0)], name="stock")
        with pytest.raises(QueryBuildError):
            engine.open_session(
                app.program(),
                [StreamReplaySource(stream), StreamReplaySource(stream)],
            )

    def test_sessions_share_compiled_kernels_and_executor(self):
        engine = TiltEngine(workers=2)
        app = get_application("trading")
        program = app.program()
        streams = app.streams(600, seed=8)
        s1 = engine.open_session(program, sources_for_streams(streams, events_per_poll=100))
        s2 = engine.open_session(program, sources_for_streams(streams, events_per_poll=250))
        # one compilation, one worker pool, shared by both sessions
        assert s1._compiled is s2._compiled
        assert engine.shared_executor() is engine.shared_executor()
        s1.run_to_exhaustion()
        s2.run_to_exhaustion()
        assert s1.result().output == s2.result().output
        engine.close()
        assert engine._executor is None

    def test_open_session_accepts_precompiled_query(self):
        engine = TiltEngine(workers=1)
        app = get_application("trading")
        compiled = engine.compile(app.program())
        streams = app.streams(600, seed=9)
        batch = engine.run(compiled, streams)
        session = engine.open_session(compiled, sources_for_streams(streams, events_per_poll=200))
        session.run_to_exhaustion()
        assert session.result().output == batch.output

    def test_close_terminates_on_unbounded_source(self):
        """close()/run_to_exhaustion must not try to drain an unbounded
        source — they flush what was ingested and return."""
        from repro.datagen.sources import GeneratorSource
        from repro.datagen import stock_price_stream

        engine = TiltEngine(workers=1)
        app = get_application("trading")
        feed = GeneratorSource(
            lambda i: stock_price_stream(2000, seed=i), name="stock", events_per_poll=500
        )
        session = engine.open_session(app.program(), [feed], retain_output=False)
        results = session.run_to_exhaustion(max_ticks=4)
        assert session.closed and len(results) == 5  # 4 ticks + final flush

    def test_compile_cache_respects_engine_settings(self):
        engine = TiltEngine(workers=1)
        program = get_application("trading").program()
        fused = engine.compile_cached(program)
        engine.enable_fusion = False
        unfused = engine.compile_cached(program)
        assert fused is not unfused
        assert len(unfused.kernels) > len(fused.kernels)
        engine.enable_fusion = True
        assert engine.compile_cached(program) is fused

    def test_engine_run_still_works_as_context_manager(self):
        app = get_application("trading")
        streams = app.streams(600, seed=10)
        with TiltEngine(workers=2) as engine:
            result = engine.run(app.program(), streams)
            assert result.output.num_valid() >= 0
        assert engine._executor is None
