"""The HTTP telemetry endpoint: routes, concurrency, health transitions.

Three layers of guarantees:

* **Route contract** (stub providers): each route serves its provider's
  payload with the right status/content type, missing providers degrade
  predictably (404, or plain liveness for ``/healthz``), and a provider
  that raises becomes a 500 — never a dead server.
* **Concurrency** (live fleet): scraper threads hammering the endpoint
  while a 20-tenant fleet runs must neither crash nor perturb the fleet —
  every tenant's output stays byte-identical to its standalone run.
* **Health transitions**: ``/healthz`` flips 200 → 503 when a tenant is
  failure-isolated and when overload shedding blows the SLO budget, and
  the endpoint shuts down cleanly (port released, threads joined) on
  ``close()``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.apps import get_application
from repro.core.runtime.engine import TiltEngine
from repro.core.runtime.stream import Event
from repro.datagen.sources import sources_for_streams
from repro.obs import TelemetryServer
from repro.serve import QueryService

TENANT_APPS = [
    "trading", "rsi", "normalize", "impute", "resample", "pantom",
    "vibration", "frauddet", "ysb", "select", "where", "wsum", "join",
    "trading", "ysb", "normalize", "frauddet", "rsi", "wsum", "impute",
]
N_EVENTS = 300
#: events per fleet tenant in the equivalence test (matches the service
#: suite's proven tick-size configuration)
FLEET_EVENTS = 500


def get(base, route):
    """(status, headers, body) of one request; HTTP errors are responses."""
    try:
        with urllib.request.urlopen(base + route, timeout=5) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


# ---------------------------------------------------------------------- #
# route contract (stub providers)
# ---------------------------------------------------------------------- #
class TestRoutes:
    def make(self, **providers):
        server = TelemetryServer(port=0, **providers).start()
        return server, server.url

    def test_all_routes_serve_their_providers(self):
        server, base = self.make(
            metrics=lambda: "repro_up 1\n",
            health=lambda: (200, {"status": "healthy"}),
            slo=lambda: {"verdict": "healthy"},
            tenants=lambda: {"t0": {"state": "active"}},
            trace=lambda tenant: {"traceEvents": [], "tenant": tenant},
        )
        try:
            status, headers, body = get(base, "/metrics")
            assert status == 200
            assert body == b"repro_up 1\n"
            assert headers["Content-Type"].startswith("text/plain")
            assert "0.0.4" in headers["Content-Type"]

            status, headers, body = get(base, "/healthz")
            assert (status, json.loads(body)["status"]) == (200, "healthy")
            assert headers["Content-Type"].startswith("application/json")

            assert json.loads(get(base, "/slo")[2]) == {"verdict": "healthy"}
            assert json.loads(get(base, "/tenants")[2]) == {"t0": {"state": "active"}}
            assert json.loads(get(base, "/trace")[2])["tenant"] is None
            assert json.loads(get(base, "/trace?tenant=t0")[2])["tenant"] == "t0"

            index = json.loads(get(base, "/")[2])
            assert set(index["routes"]) == {
                "/", "/metrics", "/healthz", "/slo", "/tenants", "/trace",
            }
            counts = server.request_counts()
            assert counts["/metrics"] == 1 and counts["/trace"] == 2
        finally:
            server.close()

    def test_missing_providers_degrade(self):
        server, base = self.make(metrics=lambda: "x 1\n")
        try:
            # no SLO engine: /healthz is plain liveness, JSON routes 404
            status, _, body = get(base, "/healthz")
            assert (status, json.loads(body)["status"]) == (200, "ok")
            assert get(base, "/slo")[0] == 404
            assert get(base, "/tenants")[0] == 404
            assert get(base, "/trace")[0] == 404
            assert get(base, "/nope")[0] == 404
            assert set(json.loads(get(base, "/")[2])["routes"]) == {
                "/", "/metrics", "/healthz",
            }
        finally:
            server.close()

    def test_unhealthy_provider_maps_to_503(self):
        server, base = self.make(health=lambda: (503, {"status": "degraded"}))
        try:
            status, _, body = get(base, "/healthz")
            assert (status, json.loads(body)["status"]) == (503, "degraded")
        finally:
            server.close()

    def test_raising_provider_is_a_500_not_a_crash(self):
        def boom():
            raise RuntimeError("provider broke")

        server, base = self.make(metrics=boom, tenants=lambda: {"ok": 1})
        try:
            status, _, body = get(base, "/metrics")
            assert status == 500
            assert "provider broke" in json.loads(body)["error"]
            # the server survived and other routes still work
            assert get(base, "/tenants")[0] == 200
        finally:
            server.close()

    def test_lifecycle(self):
        server = TelemetryServer(metrics=lambda: "x 1\n", port=0)
        assert server.port is None and server.url is None and not server.running
        server.start()
        server.start()  # idempotent
        port = server.port
        assert port and server.running
        server.close()
        server.close()  # idempotent
        assert server.port is None and not server.running
        with pytest.raises(OSError):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=0.5)

    def test_context_manager(self):
        with TelemetryServer(metrics=lambda: "x 1\n", port=0) as server:
            assert get(server.url, "/metrics")[0] == 200
        assert not server.running


# ---------------------------------------------------------------------- #
# live fleet under scrape load
# ---------------------------------------------------------------------- #
class TestFleetUnderScrape:
    def test_twenty_tenants_scraped_concurrently_stay_byte_identical(self):
        """4 scraper threads hammer every route while the 20-tenant fleet
        runs to completion; the scrape must never fail and never perturb
        tenant output."""
        engine = TiltEngine(workers=4)
        service = QueryService(engine, slo=True, telemetry_port=0)
        programs = {app: get_application(app).program() for app in set(TENANT_APPS)}
        datasets = {}
        for i, app in enumerate(TENANT_APPS):
            streams = get_application(app).streams(FLEET_EVENTS, seed=i)
            datasets[f"{app}#{i}"] = (app, streams)
            service.submit(
                programs[app],
                name=f"{app}#{i}",
                sources=sources_for_streams(streams, events_per_poll=123 + 7 * (i % 5)),
            )
        base = service.telemetry.url
        stop = threading.Event()
        failures = []

        def scrape():
            routes = ("/metrics", "/healthz", "/slo", "/tenants", "/")
            while not stop.is_set():
                for route in routes:
                    status, headers, body = get(base, route)
                    if status != 200:
                        failures.append((route, status, body[:200]))
                    if route == "/metrics" and b"repro_ticks_total" not in body:
                        failures.append((route, "missing series", body[:200]))

        scrapers = [threading.Thread(target=scrape) for _ in range(4)]
        for thread in scrapers:
            thread.start()
        try:
            service.run_until_idle()
        finally:
            stop.set()
            for thread in scrapers:
                thread.join()
        assert not failures, failures[:5]
        assert service.active_tenants() == []

        for name, (app, streams) in datasets.items():
            standalone = engine.open_session(
                programs[app], sources_for_streams(streams, events_per_poll=211)
            )
            standalone.run_to_exhaustion()
            assert service.result(name).output == standalone.result().output, name

        service.close()
        engine.close()

    def test_scrapes_of_quiet_fleet_are_byte_identical(self):
        """Between ticks nothing mutates, so concurrent scrapes of the same
        route must return byte-identical payloads."""
        service = QueryService(workers=1, slo=True, telemetry_port=0)
        app = get_application("trading")
        streams = app.streams(N_EVENTS, seed=3)
        service.submit(
            app.program(), name="t", sources=sources_for_streams(streams, events_per_poll=100)
        )
        service.run_until_idle()
        base = service.telemetry.url
        bodies = []
        lock = threading.Lock()

        def scrape():
            body = get(base, "/metrics")[2]
            with lock:
                bodies.append(body)

        threads = [threading.Thread(target=scrape) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(bodies)) == 1
        service.close()


# ---------------------------------------------------------------------- #
# health transitions on a live service
# ---------------------------------------------------------------------- #
class TestHealthTransitions:
    def test_tenant_failure_flips_healthz_to_503(self):
        service = QueryService(workers=1, slo=True, telemetry_port=0)
        base = service.telemetry.url
        app = get_application("trading")
        streams = app.streams(N_EVENTS, seed=5)
        service.submit(
            app.program(), name="ok", sources=sources_for_streams(streams, events_per_poll=100)
        )
        status, _, body = get(base, "/healthz")
        assert (status, json.loads(body)["status"]) == (200, "healthy")

        service.submit(app.program(), name="broken")
        service.ingest("broken", [Event(0.0, 10.0, 1.0), Event(5.0, 15.0, 2.0)])
        service.run_until_idle()

        status, _, body = get(base, "/healthz")
        doc = json.loads(body)
        assert status == 503
        assert doc["status"] == "degraded"
        assert doc["failed_tenants"] == ["broken"]
        assert doc["breached"] == {"broken": ["errors"]}
        # the healthy tenant ran to completion regardless
        assert service.stats().tenants["ok"]["state"] == "finished"
        # /slo carries the full evidence document
        slo_doc = json.loads(get(base, "/slo")[2])
        assert slo_doc["verdict"] == "degraded"
        assert any(
            b["objective"] == "errors" and b["tenant"] == "broken"
            for b in slo_doc["recent_breaches"]
        )
        service.close()

    def test_overload_shedding_flips_healthz_to_overloaded(self):
        service = QueryService(
            workers=1,
            slo={"max_shed_ratio": 0.05, "tick_p99_seconds": None},
            telemetry_port=0,
            max_pending_events=64,
            overload="shed",
        )
        base = service.telemetry.url
        app = get_application("trading")
        service.submit(app.program(), name="flooded")
        assert get(base, "/healthz")[0] == 200
        # 64-slot queue, 512 offered without draining: most are shed
        events = [Event(float(i) * 0.01, float(i) * 0.01 + 0.005, 1.0) for i in range(512)]
        accepted = service.ingest("flooded", events, stream="stock")
        assert accepted < len(events)

        status, _, body = get(base, "/healthz")
        doc = json.loads(body)
        assert status == 503
        assert doc["status"] == "overloaded"
        assert doc["breached"] == {"flooded": ["shed"]}
        service.close()

    def test_close_shuts_endpoint_down(self):
        service = QueryService(workers=1, slo=True, telemetry_port=0)
        port = service.telemetry.port
        assert get(service.telemetry.url, "/healthz")[0] == 200
        service.close()
        assert not service.telemetry.running
        with pytest.raises(OSError):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=0.5)
