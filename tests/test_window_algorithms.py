"""Tests for the sliding-window aggregation algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime.ssbuf import SSBuf, ssbuf_from_stream
from repro.core.runtime.stream import EventStream
from repro.windowing import (
    MAX,
    MEAN,
    MIN,
    STDDEV,
    SUM,
    PrefixRangeIndex,
    RangeAggregator,
    RecomputeAggregator,
    SparseTableRMQ,
    SubtractOnEvict,
    TwoStacksAggregator,
    make_online_aggregator,
    range_aggregate,
    snapshot_range_indices,
    streaming_window_aggregate,
    window_aggregate,
    window_grid,
)


def brute_force_window(buf: SSBuf, ws: float, we: float, agg):
    """Reference: fold every valid snapshot overlapping (ws, we]."""
    values = []
    starts = buf.interval_starts
    for i in range(len(buf)):
        if buf.valid[i] and buf.times[i] > ws and starts[i] < we:
            values.append(float(buf.values[i]))
    return agg.fold(values)


class TestSnapshotRangeIndices:
    def test_simple(self, simple_buf):
        lo, hi = snapshot_range_indices(
            simple_buf.times, simple_buf.interval_starts, np.array([6.0]), np.array([20.0])
        )
        # snapshots overlapping (6, 20]: indices 0 (event a), 1 (gap), 2 (event b)
        assert lo[0] == 0 and hi[0] == 3

    def test_empty_window(self, simple_buf):
        lo, hi = snapshot_range_indices(
            simple_buf.times, simple_buf.interval_starts, np.array([100.0]), np.array([110.0])
        )
        assert hi[0] <= lo[0]


class TestRangeAggregation:
    @pytest.mark.parametrize("agg", [SUM, MEAN, STDDEV, MAX, MIN])
    def test_matches_brute_force(self, random_walk_buf, agg):
        starts = np.array([10.0, 50.0, 100.0, 200.0, 250.0])
        ends = starts + np.array([20.0, 13.0, 50.0, 1.0, 49.0])
        values, valid = range_aggregate(random_walk_buf, starts, ends, agg)
        for i in range(len(starts)):
            expected, expected_ok = brute_force_window(
                random_walk_buf, starts[i], ends[i], agg
            )
            assert valid[i] == expected_ok
            if expected_ok:
                # prefix-sum decompositions of variance-like aggregates incur
                # floating-point cancellation; allow a small absolute error.
                assert values[i] == pytest.approx(expected, rel=1e-7, abs=1e-4)

    def test_empty_windows_are_phi(self, simple_buf):
        values, valid = range_aggregate(simple_buf, np.array([11.0]), np.array([15.0]), SUM)
        assert not valid[0]

    def test_invalid_snapshots_excluded(self):
        buf = SSBuf([1.0, 2.0, 3.0], [10.0, 99.0, 20.0], [True, False, True], 0.0)
        values, valid = range_aggregate(buf, np.array([0.0]), np.array([3.0]), SUM)
        assert valid[0] and values[0] == 30.0

    def test_generic_path_for_custom_agg(self, random_walk_buf):
        from repro.windowing import custom_aggregate

        median = custom_aggregate(
            "median",
            init=lambda: [],
            acc=lambda s, v: s + [v],
            result=lambda s: float(np.median(s)),
            vector_eval=lambda vals: float(np.median(vals)),
        )
        values, valid = range_aggregate(
            random_walk_buf, np.array([10.0, 40.0]), np.array([30.0, 60.0]), median
        )
        assert valid.all()
        expected0, _ = brute_force_window(random_walk_buf, 10.0, 30.0, median)
        assert values[0] == pytest.approx(expected0)


class TestSparseTable:
    def test_max_and_min_queries(self, random_walk_buf):
        for agg, mode in ((MAX, "max"), (MIN, "min")):
            table = SparseTableRMQ(
                random_walk_buf.times,
                random_walk_buf.interval_starts,
                random_walk_buf.values,
                random_walk_buf.valid,
                mode=mode,
            )
            starts = np.array([5.0, 17.0, 100.0])
            ends = np.array([25.0, 18.0, 299.0])
            values, valid = table.query(starts, ends)
            for i in range(len(starts)):
                expected, ok = brute_force_window(random_walk_buf, starts[i], ends[i], agg)
                assert valid[i] == ok
                if ok:
                    assert values[i] == pytest.approx(expected)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SparseTableRMQ(np.array([1.0]), np.array([0.0]), np.array([1.0]), np.array([True]), mode="sum")


class TestOnlineAggregators:
    def test_subtract_on_evict(self):
        win = SubtractOnEvict(SUM)
        for v in [1.0, 2.0, 3.0]:
            win.insert(v)
        assert win.query() == (6.0, True)
        win.evict(1.0)
        assert win.query() == (5.0, True)
        win.evict(2.0)
        win.evict(3.0)
        assert win.query() == (0.0, False)

    def test_subtract_on_evict_requires_invertible(self):
        with pytest.raises(ValueError):
            SubtractOnEvict(MAX)

    def test_two_stacks_matches_recompute(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 10, 200)
        two_stacks = TwoStacksAggregator(MAX)
        recompute = RecomputeAggregator(MAX)
        window = []
        for v in values:
            two_stacks.insert(float(v))
            recompute.insert(float(v))
            window.append(float(v))
            if len(window) > 17:
                window.pop(0)
                two_stacks.evict()
                recompute.evict()
            assert two_stacks.query() == pytest.approx(recompute.query())

    def test_two_stacks_empty_evict_raises(self):
        with pytest.raises(IndexError):
            TwoStacksAggregator(SUM).evict()

    def test_make_online_aggregator_selection(self):
        assert isinstance(make_online_aggregator(SUM), SubtractOnEvict)
        assert isinstance(make_online_aggregator(MAX), TwoStacksAggregator)
        from repro.windowing import custom_aggregate

        plain = custom_aggregate("plain", init=lambda: 0.0, acc=lambda s, v: s + v, result=lambda s: s)
        assert isinstance(make_online_aggregator(plain), RecomputeAggregator)


class TestWindowAggregate:
    def test_window_grid(self):
        grid = window_grid(0.0, 20.0, 5.0)
        assert list(grid) == [5.0, 10.0, 15.0, 20.0]
        assert len(window_grid(5.0, 5.0, 1.0)) == 0

    def test_tumbling_counts(self, regular_buf):
        out = window_aggregate(regular_buf, 10.0, 10.0, SUM)
        # values 0..99 at 1 Hz; window (0,10] sums 0..9 = 45
        assert out.value_at(10.0) == (45.0, True)
        assert out.value_at(20.0) == (145.0, True)

    def test_sliding_mean(self, regular_buf):
        out = window_aggregate(regular_buf, 10.0, 5.0, MEAN)
        value, ok = out.value_at(20.0)
        assert ok and value == pytest.approx(np.mean(np.arange(10, 20)))

    def test_vectorized_matches_streaming(self, random_walk_buf):
        for agg in (SUM, MEAN, MAX):
            fast = window_aggregate(random_walk_buf, 15.0, 5.0, agg)
            slow = streaming_window_aggregate(random_walk_buf, 15.0, 5.0, agg)
            assert len(fast) == len(slow)
            assert np.allclose(fast.times, slow.times)
            assert np.array_equal(fast.valid, slow.valid)
            assert np.allclose(fast.values[fast.valid], slow.values[slow.valid])


@st.composite
def buffer_and_windows(draw):
    n = draw(st.integers(min_value=2, max_value=80))
    values = draw(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=n, max_size=n
        )
    )
    stream = EventStream.from_samples(values, period=1.0)
    buf = ssbuf_from_stream(stream)
    num_windows = draw(st.integers(min_value=1, max_value=10))
    starts, ends = [], []
    for _ in range(num_windows):
        s = draw(st.floats(min_value=-5.0, max_value=float(n) + 5.0, allow_nan=False))
        w = draw(st.floats(min_value=0.5, max_value=25.0, allow_nan=False))
        starts.append(s)
        ends.append(s + w)
    return buf, np.array(starts), np.array(ends)


@given(buffer_and_windows(), st.sampled_from([SUM, MEAN, MAX, MIN, STDDEV]))
@settings(max_examples=60, deadline=None)
def test_property_range_aggregate_matches_brute_force(data, agg):
    """The vectorized range indexes agree with a naive per-window fold."""
    buf, starts, ends = data
    values, valid = range_aggregate(buf, starts, ends, agg)
    for i in range(len(starts)):
        expected, ok = brute_force_window(buf, starts[i], ends[i], agg)
        assert valid[i] == ok
        if ok:
            assert values[i] == pytest.approx(expected, rel=1e-7, abs=1e-4)
